//! Fault-tolerant sweep execution: job isolation, retry/resume and a
//! line-oriented journal.
//!
//! [`run_sweep`] executes a batch of [`SweepJob`]s on a worker pool
//! with the robustness properties `docs/ROBUSTNESS.md` documents:
//!
//! * **Isolation** — each job runs on its own thread behind
//!   [`std::panic::catch_unwind`]; a panicking or wedged job cannot
//!   take down the sweep or corrupt its siblings' results.
//! * **Timeouts** — an optional per-job watchdog
//!   ([`SweepOptions::job_timeout`]) abandons jobs that exceed their
//!   budget and reports them as [`JobError::TimedOut`].
//! * **Retry** — transient failures (panics, timeouts) are retried up
//!   to [`RetryPolicy::max_retries`] times with exponential backoff
//!   and deterministic (key-seeded) jitter; deterministic rejections
//!   ([`JobError::Invalid`]) are never retried.
//! * **Keep-going vs abort** — with [`SweepOptions::keep_going`] the
//!   sweep finishes every job and reports all failures at the end;
//!   without it the first failure stops the dispatch of new jobs.
//! * **Journal / resume** — with a journal path every finished job
//!   appends one JSON line (append + flush, so a killed process loses
//!   at most the in-flight jobs); a resumed sweep skips jobs whose
//!   most recent journal entry is `ok` and re-runs only the rest.
//!   Since journal v2 each line also records the job's
//!   [config hash](SweepJob::config_hash); resume refuses to skip a
//!   completed job whose recorded hash no longer matches the job, so
//!   stale results can never masquerade as current ones.
//! * **Sharding** — [`SweepOptions::shard`] restricts a run to the
//!   jobs a stable hash of the *job key* assigns to shard `i` of `N`
//!   ([`shard_of`]), so several machines can split one canonical job
//!   list without coordination and appending jobs never reshuffles
//!   existing assignments. Shard journals are unioned back together by
//!   [`merge_journals`] (last-wins per key, except that an `ok` record
//!   is never displaced by a `failed` one for the same config hash,
//!   with a typed [`MergeError::Divergent`] when two `ok` records for
//!   the same key and config hash disagree on metrics); `--resume`
//!   works against both per-shard and merged journals.
//! * **Memory budgets** — [`SweepOptions::job_mem_budget`] bounds each
//!   job's allocator high-water mark. Every job thread is tagged with
//!   a [`dtexl_alloc::AllocMeter`]; the dispatching worker polls the
//!   meter and abandons jobs that exceed the budget with a typed
//!   [`JobError::MemBudget`] — journaled and resumable exactly like a
//!   wall-clock timeout, but never retried (the same job at the same
//!   budget allocates the same bytes). Peak usage is recorded on every
//!   attempted job ([`JobRecord::peak_alloc`]) whether or not a budget
//!   is set, so fleet runs are memory-debuggable from journals alone.
//! * **Prefix memoization** — [`SweepOptions::prefix_cache`] shares
//!   the schedule-independent half of each frame simulation (geometry,
//!   binning, raster, early-Z, texture footprints) across the jobs
//!   that only differ in schedule, keyed by [`SweepJob::prefix_key`]
//!   and bounded by a retained-bytes budget. Metrics are bit-identical
//!   with the cache on or off.
//!
//! The journal is hand-rolled JSON (the vendored `serde` stand-in does
//! not serialize); the format is pinned in `docs/ROBUSTNESS.md` and by
//! the tests in this module.

use dtexl_alloc::{meter_current_thread, AllocMeter};
use dtexl_obs::{ObsRollup, RollupMode};
use dtexl_pipeline::{
    compose_frame_probed, BarrierMode, FramePrefix, FrameResult, FrameSim, PipelineConfig, SimError,
};
use dtexl_scene::{Game, SceneSpec};
use dtexl_sched::ScheduleConfig;
use parking_lot::Mutex;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One unit of sweep work: a fully-specified frame simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepJob {
    /// Benchmark to simulate.
    pub game: Game,
    /// Tile schedule under test.
    pub schedule: ScheduleConfig,
    /// Screen width in pixels.
    pub width: u32,
    /// Screen height in pixels.
    pub height: u32,
    /// Animation frame index.
    pub frame: u32,
    /// Hardware configuration (including `upper_bound` and any
    /// [`dtexl_pipeline::FaultPlan`]).
    pub pipeline: PipelineConfig,
}

impl SweepJob {
    /// A job with the default pipeline, optionally in upper-bound mode.
    #[must_use]
    pub fn new(
        game: Game,
        schedule: ScheduleConfig,
        upper: bool,
        width: u32,
        height: u32,
        frame: u32,
    ) -> Self {
        Self {
            game,
            schedule,
            width,
            height,
            frame,
            pipeline: PipelineConfig {
                upper_bound: upper,
                ..PipelineConfig::default()
            },
        }
    }

    /// Stable identity used for journal resume and report lines, e.g.
    /// `"CCS|CG-square/Hilbert/flp2|base|480x192#0"`.
    #[must_use]
    pub fn key(&self) -> String {
        format!(
            "{}|{}|{}|{}x{}#{}",
            self.game.alias(),
            self.schedule.label(),
            if self.pipeline.upper_bound {
                "upper"
            } else {
                "base"
            },
            self.width,
            self.height,
            self.frame
        )
    }

    /// Hash of everything that determines this job's *results*: the
    /// full pipeline configuration (fault plan included) plus the
    /// scene identity. `threads` is normalized out — the parallel path
    /// is bit-identical to serial by construction (pinned by
    /// tests/parallel_equivalence.rs and tests/schedule_permutation.rs)
    /// — so resuming under a different `DTEXL_THREADS` does not force
    /// re-runs. Journal v2 records this hash per line and resume
    /// refuses to skip entries whose hash changed.
    #[must_use]
    pub fn config_hash(&self) -> u64 {
        let mut normalized = self.pipeline;
        normalized.threads = 1;
        // The Debug rendering is a stable canonical form within one
        // build of the simulator, which is exactly the scope a resumed
        // journal is trusted for.
        fnv1a(format!("{}|{:?}", self.key(), normalized).as_bytes())
    }

    /// Run the simulation for this job (no isolation — callers wanting
    /// panic/timeout protection go through [`run_sweep`]).
    ///
    /// # Errors
    ///
    /// Returns the typed [`SimError`] for invalid specs, configurations
    /// or scenes.
    pub fn simulate(&self) -> Result<FrameResult, SimError> {
        let spec =
            SceneSpec::try_new(self.width, self.height, self.frame).map_err(SimError::Scene)?;
        let scene = self.game.scene(&spec);
        FrameSim::try_run_with_resolution(
            &scene,
            &self.schedule,
            &self.pipeline,
            self.width,
            self.height,
        )
    }

    /// Hash of everything that determines this job's *shared frame
    /// prefix* — the scene identity plus the full pipeline
    /// configuration (fault plan included, `threads` normalized out,
    /// same canonical form as [`config_hash`](Self::config_hash)).
    /// Unlike `config_hash` it deliberately **excludes the schedule**:
    /// the prefix is schedule-independent, so the FG and CG legs of one
    /// (game, resolution, config) triple share a single cache entry.
    #[must_use]
    pub fn prefix_key(&self) -> u64 {
        let mut normalized = self.pipeline;
        normalized.threads = 1;
        fnv1a(
            format!(
                "{}|{}x{}#{}|{:?}",
                self.game.alias(),
                self.width,
                self.height,
                self.frame,
                normalized
            )
            .as_bytes(),
        )
    }

    /// Like [`simulate`](Self::simulate), but reuse (or populate) a
    /// shared [`PrefixCache`] of schedule-independent frame prefixes.
    /// With `None` this is exactly `simulate()`. The memoized path is
    /// bit-identical to the fresh one by construction — both run the
    /// same schedule-dependent leg over the same prefix data (pinned by
    /// tests/memoize_equivalence.rs).
    ///
    /// # Errors
    ///
    /// Returns the typed [`SimError`] for invalid specs, configurations
    /// or scenes.
    pub fn simulate_with(&self, cache: Option<&PrefixCache>) -> Result<FrameResult, SimError> {
        let Some(cache) = cache else {
            return self.simulate();
        };
        let key = self.prefix_key();
        if let Some(prefix) = cache.lookup(key) {
            return FrameSim::try_run_prefixed(&prefix, &self.schedule, &self.pipeline);
        }
        let spec =
            SceneSpec::try_new(self.width, self.height, self.frame).map_err(SimError::Scene)?;
        let scene = self.game.scene(&spec);
        let prefix = Arc::new(FramePrefix::build(
            &scene,
            &self.pipeline,
            self.width,
            self.height,
        )?);
        let result = FrameSim::try_run_prefixed(&prefix, &self.schedule, &self.pipeline)?;
        // Insert only after the leg succeeded, so a prefix that trips a
        // downstream validation error is never cached.
        cache.insert(key, prefix);
        Ok(result)
    }

    /// Like [`simulate_with`](Self::simulate_with), but with rollup
    /// probes attached: the functional pass feeds the memory counters
    /// and both frame-time compositions feed the per-unit stall totals
    /// of the returned [`ObsRollup`]. Every input the probes see —
    /// mem samples in canonical replay order, spans derived from the
    /// thread-invariant `StageDurations` — is bit-identical across
    /// `threads` settings and memoized vs fresh execution, so the
    /// rollup is too (pinned by `tests/obs_rollup.rs`).
    ///
    /// # Errors
    ///
    /// Returns the typed [`SimError`] for invalid specs, configurations
    /// or scenes.
    pub fn simulate_rollup(
        &self,
        cache: Option<&PrefixCache>,
    ) -> Result<(FrameResult, ObsRollup), SimError> {
        let mut rollup = ObsRollup::default();
        let result = match cache {
            None => {
                let spec = SceneSpec::try_new(self.width, self.height, self.frame)
                    .map_err(SimError::Scene)?;
                let scene = self.game.scene(&spec);
                FrameSim::try_run_probed(
                    &scene,
                    &self.schedule,
                    &self.pipeline,
                    self.width,
                    self.height,
                    &mut rollup.probe(RollupMode::Sim),
                )?
            }
            Some(cache) => {
                let key = self.prefix_key();
                if let Some(prefix) = cache.lookup(key) {
                    FrameSim::try_run_prefixed_probed(
                        &prefix,
                        &self.schedule,
                        &self.pipeline,
                        &mut rollup.probe(RollupMode::Sim),
                    )?
                } else {
                    let spec = SceneSpec::try_new(self.width, self.height, self.frame)
                        .map_err(SimError::Scene)?;
                    let scene = self.game.scene(&spec);
                    let prefix = Arc::new(FramePrefix::build(
                        &scene,
                        &self.pipeline,
                        self.width,
                        self.height,
                    )?);
                    let result = FrameSim::try_run_prefixed_probed(
                        &prefix,
                        &self.schedule,
                        &self.pipeline,
                        &mut rollup.probe(RollupMode::Sim),
                    )?;
                    cache.insert(key, prefix);
                    result
                }
            }
        };
        compose_frame_probed(
            &result.durations,
            BarrierMode::Coupled,
            &mut rollup.probe(RollupMode::Coupled),
        );
        compose_frame_probed(
            &result.durations,
            BarrierMode::Decoupled,
            &mut rollup.probe(RollupMode::Decoupled),
        );
        Ok((result, rollup))
    }
}

/// Counter snapshot from [`PrefixCache::stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PrefixCacheStats {
    /// Prefixes currently resident.
    pub entries: usize,
    /// Approximate retained bytes across resident prefixes.
    pub bytes: u64,
    /// Lookups that found their prefix.
    pub hits: u64,
    /// Lookups that missed (each miss costs one prefix build).
    pub misses: u64,
    /// Entries displaced to make room under the budget.
    pub evictions: u64,
    /// Inserts refused because the prefix alone exceeds the budget.
    pub rejected: u64,
}

/// Bounded, shared cache of schedule-independent [`FramePrefix`]es,
/// keyed by [`SweepJob::prefix_key`] (an FNV-1a hash, the same family
/// journal v2 uses for config hashes).
///
/// The canonical sweep runs every (game, resolution) pair once per
/// schedule leg; the prefix — geometry, binning, raster, early-Z,
/// texture footprints — is identical across those legs, so caching it
/// halves the functional work. Prefixes are built on the job's
/// metered thread (so `--job-mem-budget` sees the build), and the
/// cache's *retained* footprint is bounded separately by `budget`:
/// once `approx_bytes` of the resident prefixes would exceed it, the
/// oldest entries are evicted first (FIFO — sweep job lists group a
/// game's legs together, so insertion order approximates recency), and
/// a prefix too large to ever fit is simply not retained — the job
/// still completes, it just forfeits reuse. Either way an overrun
/// degrades to a cache miss, never to a failure.
///
/// Determinism: the cache only changes *when* a prefix is computed,
/// never *what* it contains, so metrics are bit-identical with the
/// cache on, off, or thrashing (pinned by tests/memoize_equivalence.rs
/// and the CI canon diff).
#[derive(Debug)]
pub struct PrefixCache {
    /// Retained-bytes bound; `None` is unbounded.
    budget: Option<u64>,
    inner: Mutex<PrefixCacheInner>,
}

#[derive(Debug, Default)]
struct PrefixCacheInner {
    /// Resident prefixes. `BTreeMap` (not `HashMap`): iteration order
    /// feeds nothing observable today, but the determinism lint bans
    /// `HashMap` wholesale in sim crates and this map is no exception.
    entries: BTreeMap<u64, Arc<FramePrefix>>,
    /// Insertion order of live keys, oldest first (FIFO eviction).
    order: Vec<u64>,
    /// Approximate retained bytes across `entries`.
    bytes: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
    rejected: u64,
}

impl PrefixCache {
    /// A cache retaining at most `budget` bytes of prefixes (`None` is
    /// unbounded), shareable across sweep workers.
    #[must_use]
    pub fn new(budget: Option<u64>) -> Arc<Self> {
        Arc::new(Self {
            budget,
            inner: Mutex::new(PrefixCacheInner::default()),
        })
    }

    /// Fetch the prefix cached under `key`, if resident.
    #[must_use]
    pub fn lookup(&self, key: u64) -> Option<Arc<FramePrefix>> {
        let mut inner = self.inner.lock();
        match inner.entries.get(&key) {
            Some(prefix) => {
                let prefix = Arc::clone(prefix);
                inner.hits += 1;
                Some(prefix)
            }
            None => {
                inner.misses += 1;
                None
            }
        }
    }

    /// Retain `prefix` under `key`, evicting oldest-first to fit the
    /// budget. A prefix that alone exceeds the budget is rejected
    /// (counted, not an error); a key already resident is left as-is
    /// (two workers can race to build the same prefix — the copies are
    /// identical, so whichever insert lands first wins).
    pub fn insert(&self, key: u64, prefix: Arc<FramePrefix>) {
        let size = prefix.approx_bytes();
        let mut inner = self.inner.lock();
        if inner.entries.contains_key(&key) {
            return;
        }
        if let Some(budget) = self.budget {
            if size > budget {
                inner.rejected += 1;
                return;
            }
            while inner.bytes + size > budget {
                // `order` tracks exactly the live keys, so the front is
                // always removable while we are over budget.
                let oldest = inner.order.remove(0);
                if let Some(evicted) = inner.entries.remove(&oldest) {
                    inner.bytes -= evicted.approx_bytes();
                    inner.evictions += 1;
                }
            }
        }
        inner.bytes += size;
        inner.order.push(key);
        inner.entries.insert(key, prefix);
    }

    /// Snapshot of the cache's counters.
    #[must_use]
    pub fn stats(&self) -> PrefixCacheStats {
        let inner = self.inner.lock();
        PrefixCacheStats {
            entries: inner.entries.len(),
            bytes: inner.bytes,
            hits: inner.hits,
            misses: inner.misses,
            evictions: inner.evictions,
            rejected: inner.rejected,
        }
    }
}

/// Which shard of the canonical job list `shard_of` assigns a key to:
/// `fnv1a(key) % count`. Hashing the *key* (not the list position)
/// makes assignments stable under job-list append — adding games never
/// moves an existing job to a different shard.
#[must_use]
pub fn shard_of(key: &str, count: u32) -> u32 {
    (fnv1a(key.as_bytes()) % u64::from(count.max(1))) as u32
}

/// One slice `i/N` of a sharded sweep (`0 <= i < N`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Shard {
    /// This shard's index (0-based).
    pub index: u32,
    /// Total number of shards.
    pub count: u32,
}

impl Shard {
    /// Build a validated shard selector.
    ///
    /// # Errors
    ///
    /// Rejects `count == 0` and `index >= count`.
    pub fn new(index: u32, count: u32) -> Result<Self, ParseShardError> {
        if count == 0 {
            return Err(ParseShardError::ZeroCount);
        }
        if index >= count {
            return Err(ParseShardError::IndexOutOfRange { index, count });
        }
        Ok(Self { index, count })
    }

    /// Whether this shard owns the job with identity `key`.
    #[must_use]
    pub fn contains(&self, key: &str) -> bool {
        shard_of(key, self.count) == self.index
    }
}

impl fmt::Display for Shard {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.index, self.count)
    }
}

impl std::str::FromStr for Shard {
    type Err = ParseShardError;

    /// Parse the CLI spelling `i/N`, e.g. `0/2`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (index, count) = s
            .split_once('/')
            .ok_or_else(|| ParseShardError::Malformed(s.into()))?;
        let index = index
            .trim()
            .parse()
            .map_err(|_| ParseShardError::Malformed(s.into()))?;
        let count = count
            .trim()
            .parse()
            .map_err(|_| ParseShardError::Malformed(s.into()))?;
        Shard::new(index, count)
    }
}

/// Why a shard spec was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseShardError {
    /// Not of the form `i/N` with two unsigned integers.
    Malformed(String),
    /// `N == 0`: a sweep cannot be split into zero shards.
    ZeroCount,
    /// `i >= N`: the index names a shard that does not exist.
    IndexOutOfRange {
        /// Offending index.
        index: u32,
        /// Declared shard count.
        count: u32,
    },
}

impl fmt::Display for ParseShardError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseShardError::Malformed(s) => {
                write!(f, "shard spec `{s}` is not of the form i/N (e.g. 0/2)")
            }
            ParseShardError::ZeroCount => write!(f, "shard count must be >= 1"),
            ParseShardError::IndexOutOfRange { index, count } => {
                write!(f, "shard index {index} out of range for {count} shard(s)")
            }
        }
    }
}

impl std::error::Error for ParseShardError {}

/// Why a sweep job failed.
#[derive(Debug, Clone, PartialEq)]
pub enum JobError {
    /// The simulator rejected the job's inputs; deterministic, never
    /// retried.
    Invalid(SimError),
    /// The job panicked (payload message attached). Isolated by
    /// `catch_unwind`; retried.
    Panicked(String),
    /// The job exceeded the per-job timeout and was abandoned; retried.
    TimedOut {
        /// The budget it blew through.
        after: Duration,
    },
    /// The job's allocator high-water mark exceeded the per-job memory
    /// budget and the job was abandoned. Deterministic at a fixed
    /// budget (the same job allocates the same bytes), so never
    /// retried; `--resume` with a raised budget re-runs it.
    MemBudget {
        /// Peak bytes observed when the job was abandoned.
        used: u64,
        /// The budget (bytes) it exceeded.
        budget: u64,
    },
    /// The fleet supervisor (`dtexl sweep dispatch`) quarantined this
    /// job: its shard process died repeatedly while the job was the
    /// in-flight attempt, so the job is presumed to be what killed it.
    /// Written to the journal *by the supervisor* (the child that
    /// would have run the job is dead); a resuming child sees the
    /// quarantine record and fails the job without executing it, so
    /// one pathological config degrades to a single failed record
    /// instead of a crash loop. Never retried in-process; delete the
    /// journal line (or run without `--resume`) to re-attempt it.
    Poisoned {
        /// How many shard deaths were blamed on the job.
        deaths: u32,
    },
    /// A spool artifact (batch file, spool directory) could not be
    /// read or did not parse. Raised by the daemon-mode job queue
    /// (`dtexl sweep daemon` / `submit`); a corrupt *batch* is
    /// quarantined and journaled with this kind, never retried — the
    /// bytes on disk will not improve on a second read.
    SpoolCorrupt {
        /// The offending file or directory.
        path: String,
        /// What was wrong with it.
        detail: String,
    },
    /// A submitted batch's content hash matched a batch already in the
    /// spool: the same job set was already queued or accepted.
    /// Deterministic (content-addressed), never retried; resubmit is a
    /// no-op by design so at-least-once submitters are safe.
    DuplicateBatch {
        /// The batch id (content hash) both submissions share.
        batch: String,
    },
}

impl JobError {
    /// Whether a retry could plausibly succeed (panics and timeouts can
    /// be transient; typed rejections cannot, and a memory budget is
    /// deterministic at a fixed budget).
    #[must_use]
    pub fn retryable(&self) -> bool {
        !matches!(
            self,
            JobError::Invalid(_)
                | JobError::MemBudget { .. }
                | JobError::Poisoned { .. }
                | JobError::SpoolCorrupt { .. }
                | JobError::DuplicateBatch { .. }
        )
    }

    /// Short machine-readable kind tag (journal `error_kind` field).
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            JobError::Invalid(_) => "invalid",
            JobError::Panicked(_) => "panic",
            JobError::TimedOut { .. } => "timeout",
            JobError::MemBudget { .. } => "mem_budget",
            JobError::Poisoned { .. } => "poisoned",
            JobError::SpoolCorrupt { .. } => "spool_corrupt",
            JobError::DuplicateBatch { .. } => "duplicate_batch",
        }
    }
}

impl fmt::Display for JobError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JobError::Invalid(e) => write!(f, "{e}"),
            JobError::Panicked(m) => write!(f, "job panicked: {m}"),
            JobError::TimedOut { after } => {
                write!(f, "job exceeded its {}ms timeout", after.as_millis())
            }
            JobError::MemBudget { used, budget } => write!(
                f,
                "job allocated {used} bytes, exceeding its {budget}-byte memory budget"
            ),
            JobError::Poisoned { deaths } => write!(
                f,
                "job quarantined as poison: its shard died {deaths} time(s) while this job \
                 was in flight"
            ),
            JobError::SpoolCorrupt { path, detail } => {
                write!(f, "spool artifact {path} is corrupt: {detail}")
            }
            JobError::DuplicateBatch { batch } => write!(
                f,
                "batch {batch} was already submitted (content-identical job set)"
            ),
        }
    }
}

impl std::error::Error for JobError {}

/// Bounded retry with exponential backoff and deterministic jitter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Extra attempts after the first (0 = try once).
    pub max_retries: u32,
    /// Base delay: retry `n` sleeps `backoff × 2^(n-1)` plus a
    /// key-seeded jitter in `[0, backoff / 2)` (see
    /// [`delay`](Self::delay)).
    pub backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_retries: 0,
            backoff: Duration::from_millis(50),
        }
    }
}

impl RetryPolicy {
    /// Backoff before retry `attempt` (1-based: the sleep after the
    /// `attempt`-th failed try): `backoff × 2^(attempt-1)`, doubling
    /// capped at `×64`, plus a deterministic jitter in
    /// `[0, backoff / 2)` derived from `salt` (the job-key hash) and
    /// `attempt`. Pure and seeded, so retry schedules are replayable
    /// and testable without wall-clock coupling.
    #[must_use]
    pub fn delay(&self, attempt: u32, salt: u64) -> Duration {
        let exp = attempt.saturating_sub(1).min(6);
        let base = self.backoff.saturating_mul(1 << exp);
        let half = self.backoff.checked_div(2).unwrap_or(Duration::ZERO);
        if half.is_zero() {
            return base;
        }
        let jitter_ns = splitmix64(salt ^ u64::from(attempt)) % half.as_nanos().max(1) as u64;
        base + Duration::from_nanos(jitter_ns)
    }
}

/// FNV-1a 64-bit: stable, dependency-free hash for job identities.
/// `pub(crate)`: the spool content-addresses batch files with the same
/// hash family the journal uses for config hashes.
pub(crate) fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// splitmix64 mixer (same finalizer the fault plan uses): uncorrelated
/// jitter streams from consecutive salts.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Knobs for [`run_sweep`].
#[derive(Debug, Clone)]
pub struct SweepOptions {
    /// Worker threads (0 = one per job, capped at 8).
    pub workers: usize,
    /// Finish every job and report failures at the end, instead of
    /// stopping dispatch at the first failure.
    pub keep_going: bool,
    /// Per-job watchdog budget; `None` waits forever.
    pub job_timeout: Option<Duration>,
    /// Retry policy for transient failures.
    pub retry: RetryPolicy,
    /// Append one JSON line per finished job to this file.
    pub journal: Option<PathBuf>,
    /// Skip jobs whose latest journal entry is `ok` *and* whose
    /// recorded config hash still matches (requires `journal`).
    pub resume: bool,
    /// Run only the jobs [`shard_of`] assigns to this shard; `None`
    /// runs the full list. Out-of-shard jobs get no record and no
    /// journal line — they belong to another machine's run.
    pub shard: Option<Shard>,
    /// Per-job allocator high-water budget in **bytes**; `None` is
    /// unbounded. Exceeding it fails the job with
    /// [`JobError::MemBudget`] (never retried at the same budget).
    pub job_mem_budget: Option<u64>,
    /// How backoff delays are slept. Defaults to
    /// [`std::thread::sleep`]; tests inject a recording stub so retry
    /// schedules are pinned without wall-clock coupling.
    pub sleeper: fn(Duration),
    /// Structured progress hook: invoked (from worker threads) with
    /// every [`Progress`] event of every job this process dispatches.
    /// `None` (the default) emits nothing and adds no overhead. A fn
    /// pointer, like [`SweepOptions::sleeper`], so the options stay
    /// `Clone` + `Debug`; sinks that need state go through globals
    /// (the CLI writes straight to stderr).
    pub progress: Option<fn(&Progress)>,
    /// Minimum interval between [`ProgressKind::Heartbeat`] events for
    /// an in-flight attempt. Only consulted when `progress` is set; a
    /// **zero** interval disables heartbeats entirely (the other event
    /// kinds still flow) rather than emitting as fast as possible.
    pub progress_heartbeat: Duration,
    /// Shared [`PrefixCache`] of schedule-independent frame prefixes;
    /// jobs run through [`SweepJob::simulate_with`] when set. `None`
    /// (the default) simulates every job from scratch.
    pub prefix_cache: Option<Arc<PrefixCache>>,
    /// Attach rollup probes to every job
    /// ([`SweepJob::simulate_rollup`]) and journal the resulting
    /// [`ObsRollup`] as each record's `obs` object. Off by default —
    /// the unprobed path monomorphizes against `NullProbe` and keeps
    /// its allocation profile.
    pub with_obs: bool,
}

impl Default for SweepOptions {
    fn default() -> Self {
        Self {
            workers: 0,
            keep_going: false,
            job_timeout: None,
            retry: RetryPolicy::default(),
            journal: None,
            resume: false,
            shard: None,
            job_mem_budget: None,
            sleeper: std::thread::sleep,
            progress: None,
            progress_heartbeat: Duration::from_secs(1),
            prefix_cache: None,
            with_obs: false,
        }
    }
}

/// What a [`Progress`] event reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProgressKind {
    /// The job was picked up by a worker (emitted even when resume
    /// then skips it, so a consumer sees every in-shard job exactly
    /// once).
    Start,
    /// An attempt is about to run (`attempt` is 1-based).
    Attempt,
    /// The attempt failed retryably; the worker is about to back off
    /// and try again.
    Retry,
    /// The attempt is still running; `peak_alloc_bytes` is the live
    /// allocator high-water mark.
    Heartbeat,
    /// The job reached a terminal [`JobStatus`] (carried in `status`).
    Done,
    /// Not a job event: a spool worker (`dtexl sweep --spool`) has no
    /// queued work and is waiting for batches. Emitted between scan
    /// passes so a fleet supervisor's wedge detection sees a live,
    /// merely idle, child (`key` is empty; never enters blame
    /// tracking).
    Idle,
}

impl ProgressKind {
    /// Stable wire name of the event (the JSONL `"event"` field).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Self::Start => "start",
            Self::Attempt => "attempt",
            Self::Retry => "retry",
            Self::Heartbeat => "heartbeat",
            Self::Done => "done",
            Self::Idle => "idle",
        }
    }
}

/// One structured sweep-progress event, streamed live while a sweep
/// runs (unlike the journal, which records only terminal outcomes).
/// [`Progress::to_json`] renders the stable one-line JSON form the CLI
/// emits under `dtexl sweep --progress`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Progress {
    /// What happened.
    pub kind: ProgressKind,
    /// The job's stable identity ([`SweepJob::key`]).
    pub key: String,
    /// Index into the job slice passed to [`run_sweep`].
    pub index: usize,
    /// 1-based attempt number (0 before the first attempt starts).
    pub attempt: u32,
    /// Wall time spent on the job so far.
    pub elapsed: Duration,
    /// Allocator high-water mark observed so far (bytes; live for
    /// heartbeats, final for done events, 0 before the job allocates).
    pub peak_alloc_bytes: u64,
    /// The shard this process is running, when sharded — lets a fleet
    /// supervisor attribute a multiplexed stream.
    pub shard: Option<Shard>,
    /// The emitting process's OS pid: a supervisor tailing a progress
    /// file can detect a stale writer (lines from a pid it no longer
    /// supervises).
    pub pid: u32,
    /// Monotonic per-run sequence number (0-based, shared across all
    /// worker threads of one [`run_sweep`] call). Gap-free within a
    /// run; a gap means the consumer lost lines (truncated stream),
    /// and a reset to 0 marks a restarted process.
    pub seq: u64,
    /// Terminal status; only present on [`ProgressKind::Done`].
    pub status: Option<JobStatus>,
    /// The job's dominant stall category ([`ObsRollup::top_stall`]),
    /// on `done` events of rollup-probed (`--with-obs`) runs — a fleet
    /// operator sees *why* a job was slow without opening the journal.
    pub top_stall: Option<String>,
    /// The job's total DRAM requests, on `done` events of
    /// rollup-probed runs.
    pub dram_requests: Option<u64>,
}

impl Progress {
    /// Render the event as one line of JSON (no trailing newline).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut s = format!(
            "{{\"event\":\"{}\",\"key\":\"{}\",\"index\":{},\"attempt\":{},\"elapsed_ms\":{},\"peak_alloc_bytes\":{}",
            self.kind.name(),
            json_escape(&self.key),
            self.index,
            self.attempt,
            self.elapsed.as_millis(),
            self.peak_alloc_bytes
        );
        use std::fmt::Write as _;
        if let Some(shard) = self.shard {
            let _ = write!(s, ",\"shard\":\"{shard}\"");
        }
        let _ = write!(s, ",\"pid\":{},\"seq\":{}", self.pid, self.seq);
        if let Some(status) = self.status {
            let _ = write!(s, ",\"status\":\"{}\"", status.name());
        }
        if let Some(top) = &self.top_stall {
            let _ = write!(s, ",\"top_stall\":\"{}\"", json_escape(top));
        }
        if let Some(dram) = self.dram_requests {
            let _ = write!(s, ",\"dram_requests\":{dram}");
        }
        s.push('}');
        s
    }
}

/// A progress event parsed back from its JSONL wire form — the
/// supervisor-side dual of [`Progress::to_json`]. Unknown fields are
/// ignored and `None` for blank/truncated/corrupt lines, mirroring
/// [`parse_journal_line`]: a dying child may leave a partial final
/// line, and the tail reader must shrug it off.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProgressLine {
    /// The `"event"` wire name (`start`/`attempt`/`retry`/`heartbeat`/
    /// `done`).
    pub event: String,
    /// Job identity.
    pub key: String,
    /// Job index within the emitting process's job list.
    pub index: u64,
    /// 1-based attempt number (0 before the first attempt).
    pub attempt: u64,
    /// Wall time the job had consumed when the event fired.
    pub elapsed_ms: u64,
    /// Live (heartbeat) or final (done) allocator high-water mark.
    pub peak_alloc_bytes: u64,
    /// The emitting shard, when the run was sharded.
    pub shard: Option<Shard>,
    /// Emitting process pid (`None` on pre-fleet streams).
    pub pid: Option<u32>,
    /// Monotonic per-run sequence number (`None` on pre-fleet streams).
    pub seq: Option<u64>,
    /// Terminal status wire name, on `done` events.
    pub status: Option<String>,
    /// Dominant stall category, on `done` events of `--with-obs` runs.
    pub top_stall: Option<String>,
    /// Total DRAM requests, on `done` events of `--with-obs` runs.
    pub dram_requests: Option<u64>,
}

/// Parse one progress JSONL line; `None` for blank, truncated or
/// corrupt lines.
#[must_use]
pub fn parse_progress_line(line: &str) -> Option<ProgressLine> {
    let line = line.trim();
    if line.is_empty() || !line.starts_with('{') || !line.ends_with('}') {
        return None;
    }
    Some(ProgressLine {
        event: field_str(line, "event")?,
        key: field_str(line, "key")?,
        index: field_u64(line, "index")?,
        attempt: field_u64(line, "attempt").unwrap_or(0),
        elapsed_ms: field_u64(line, "elapsed_ms").unwrap_or(0),
        peak_alloc_bytes: field_u64(line, "peak_alloc_bytes").unwrap_or(0),
        shard: field_str(line, "shard").and_then(|s| s.parse().ok()),
        pid: field_u64(line, "pid").and_then(|p| u32::try_from(p).ok()),
        seq: field_u64(line, "seq"),
        status: field_str(line, "status"),
        top_stall: field_str(line, "top_stall"),
        dram_requests: field_u64(line, "dram_requests"),
    })
}

/// Headline metrics captured per successful job (journaled, so a
/// resumed sweep still knows what completed runs produced).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobMetrics {
    /// Frame time under coupled barriers (cycles).
    pub coupled_cycles: u64,
    /// Frame time under decoupled barriers (cycles).
    pub decoupled_cycles: u64,
    /// Shared-L2 accesses (= total L1 misses).
    pub l2_accesses: u64,
}

impl JobMetrics {
    /// Extract the journaled metrics from a frame result.
    #[must_use]
    pub fn of(result: &FrameResult) -> Self {
        Self {
            coupled_cycles: result.total_cycles(BarrierMode::Coupled),
            decoupled_cycles: result.total_cycles(BarrierMode::Decoupled),
            l2_accesses: result.hierarchy.l2.accesses,
        }
    }
}

/// Terminal state of one job in a sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobStatus {
    /// Simulated successfully (this run).
    Ok,
    /// Failed after all permitted attempts.
    Failed,
    /// Skipped: the journal says a previous run already completed it.
    Skipped,
    /// Never dispatched: the sweep aborted on an earlier failure.
    NotRun,
}

impl JobStatus {
    /// Stable wire name (used by both the journal and progress JSONL).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Self::Ok => "ok",
            Self::Failed => "failed",
            Self::Skipped => "skipped",
            Self::NotRun => "not_run",
        }
    }
}

/// Outcome of one job.
#[derive(Debug, Clone, PartialEq)]
pub struct JobRecord {
    /// Index into the job slice passed to [`run_sweep`].
    pub index: usize,
    /// The job's stable identity ([`SweepJob::key`]).
    pub key: String,
    /// Terminal status.
    pub status: JobStatus,
    /// Attempts consumed (0 for skipped/not-run jobs).
    pub attempts: u32,
    /// Wall time spent on the job across attempts.
    pub elapsed: Duration,
    /// The last error, for failed jobs.
    pub error: Option<JobError>,
    /// Headline metrics, for successful jobs.
    pub metrics: Option<JobMetrics>,
    /// The job's [`SweepJob::config_hash`], journaled so resume can
    /// detect configuration drift.
    pub config_hash: u64,
    /// Allocator high-water mark (bytes) across all attempts; `None`
    /// for jobs that never ran (skipped / not-run).
    pub peak_alloc: Option<u64>,
    /// The shard this record was produced under, when sharded.
    pub shard: Option<Shard>,
    /// Per-job probe rollup, for successful jobs of `--with-obs` runs.
    pub obs: Option<ObsRollup>,
}

/// End-of-sweep summary: one record per job plus the abort flag.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepReport {
    /// Per-job outcomes, in job order.
    pub records: Vec<JobRecord>,
    /// Whether the sweep stopped dispatching after a failure
    /// (`keep_going == false`).
    pub aborted: bool,
}

impl SweepReport {
    /// Jobs that completed (this run or, when resuming, a previous
    /// one).
    #[must_use]
    pub fn completed(&self) -> usize {
        self.records
            .iter()
            .filter(|r| matches!(r.status, JobStatus::Ok | JobStatus::Skipped))
            .count()
    }

    /// Jobs that exhausted their attempts.
    #[must_use]
    pub fn failed(&self) -> Vec<&JobRecord> {
        self.records
            .iter()
            .filter(|r| r.status == JobStatus::Failed)
            .collect()
    }

    /// Whether every job completed.
    #[must_use]
    pub fn is_success(&self) -> bool {
        !self.aborted && self.failed().is_empty()
    }

    /// Multi-line failure report: a headline count plus one line per
    /// failed job (`key`, attempts, error).
    #[must_use]
    pub fn summary(&self) -> String {
        let failed = self.failed();
        let mut s = format!(
            "sweep: {}/{} jobs completed, {} failed{}",
            self.completed(),
            self.records.len(),
            failed.len(),
            if self.aborted {
                " (aborted on first failure)"
            } else {
                ""
            }
        );
        for r in failed {
            use std::fmt::Write as _;
            let err = r.error.as_ref().map_or_else(String::new, |e| e.to_string());
            let _ = write!(s, "\n  {} after {} attempt(s): {err}", r.key, r.attempts);
        }
        s
    }

    /// Fixed-width per-job summary table: status, attempts, wall time
    /// and allocator high-water mark — the engine's own observability
    /// view, so fleet runs are debuggable without re-parsing journals.
    #[must_use]
    pub fn table(&self) -> String {
        use std::fmt::Write as _;
        let key_w = self
            .records
            .iter()
            .map(|r| r.key.len())
            .max()
            .unwrap_or(3)
            .max(3);
        let mut s = format!(
            "{:key_w$}  {:8}  {:>3}  {:>10}  {:>14}",
            "key", "status", "att", "elapsed_ms", "peak_alloc"
        );
        if let Some(shard) = self.records.iter().find_map(|r| r.shard) {
            let _ = write!(s, "  (shard {shard})");
        }
        for r in &self.records {
            let status = r.status.name();
            let peak = r
                .peak_alloc
                .map_or_else(|| "-".into(), |p| format!("{:.1} MiB", p as f64 / MIB));
            let _ = write!(
                s,
                "\n{:key_w$}  {:8}  {:>3}  {:>10}  {:>14}",
                r.key,
                status,
                r.attempts,
                r.elapsed.as_millis(),
                peak
            );
        }
        s
    }
}

/// Bytes per mebibyte (the unit `--job-mem-budget` is spelled in).
pub const MIB: f64 = 1024.0 * 1024.0;

/// How often the watchdog samples the job's allocator meter while a
/// memory budget (or a timeout alongside one) is in force.
const WATCHDOG_POLL: Duration = Duration::from_millis(5);

/// Run one job attempt on a disposable thread: panics are caught, and
/// the watchdogs abandon (detach) the thread once a wall-clock or
/// memory budget is exhausted — it cannot block the sweep. The job
/// thread is tagged with an [`AllocMeter`] for its whole life, so the
/// returned peak covers the attempt whether or not a budget is set.
///
/// A budget overrun is detected two ways: the poll loop catches jobs
/// mid-flight (so a wedged, over-budget job is abandoned promptly),
/// and a final high-water check after completion catches spikes that
/// came and went between polls — making the verdict deterministic for
/// a given job and budget, independent of scheduler timing.
///
/// `heartbeat` is an optional `(interval, emit)` pair: while the
/// attempt is in flight, `emit` is called with the live allocator
/// high-water mark at least `interval` apart. It also turns the
/// no-watchdog `(None, None)` wait from a blocking `recv` into a
/// polled one so beats keep flowing.
fn run_attempt(
    job: SweepJob,
    timeout: Option<Duration>,
    mem_budget: Option<u64>,
    heartbeat: Option<(Duration, &dyn Fn(u64))>,
    cache: Option<Arc<PrefixCache>>,
    with_obs: bool,
) -> (Result<(FrameResult, Option<ObsRollup>), JobError>, u64) {
    // Belt and braces: callers already translate a zero interval into
    // `None`, but a zero that slipped through would min-merge into the
    // watchdog slice below and busy-loop it.
    let heartbeat = heartbeat.filter(|(every, _)| !every.is_zero());
    let meter = AllocMeter::new();
    let (tx, rx) = std::sync::mpsc::channel();
    let job_meter = Arc::clone(&meter);
    std::thread::spawn(move || {
        // Tag before any simulation work so every allocation of this
        // disposable thread is charged to the job's meter (including a
        // prefix build on a cache miss).
        let _tag = meter_current_thread(&job_meter);
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            if with_obs {
                job.simulate_rollup(cache.as_deref())
                    .map(|(result, rollup)| (result, Some(rollup)))
            } else {
                job.simulate_with(cache.as_deref())
                    .map(|result| (result, None))
            }
        }));
        // The receiver may be gone (watchdog fired): ignore the send error.
        let _ = tx.send(outcome.map_err(|payload| {
            payload
                .downcast_ref::<&str>()
                .map(ToString::to_string)
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".into())
        }));
    });

    let started = Instant::now();
    let mut last_beat = Instant::now();
    let outcome = loop {
        if let Some((every, emit)) = heartbeat {
            if last_beat.elapsed() >= every {
                emit(meter.peak_bytes());
                last_beat = Instant::now();
            }
        }
        if let Some(budget) = mem_budget {
            let used = meter.peak_bytes();
            if used > budget {
                return (Err(JobError::MemBudget { used, budget }), used);
            }
        }
        // Wait until the next beat is due; the floor keeps a
        // pathologically small interval from busy-spinning the loop.
        let beat_slice = heartbeat.map(|(every, _)| {
            every
                .saturating_sub(last_beat.elapsed())
                .max(Duration::from_millis(1))
        });
        let slice = match (timeout, mem_budget) {
            (Some(t), budget) => {
                let elapsed = started.elapsed();
                if elapsed >= t {
                    return (Err(JobError::TimedOut { after: t }), meter.peak_bytes());
                }
                let remaining = t - elapsed;
                // Poll the meter only when a budget is in force; a
                // plain timeout blocks for its full remainder instead
                // of waking every few milliseconds.
                if budget.is_some() {
                    Some(remaining.min(WATCHDOG_POLL))
                } else {
                    Some(remaining)
                }
            }
            (None, Some(_)) => Some(WATCHDOG_POLL),
            // No watchdog: block on the channel — unless beats must
            // keep flowing, in which case wake for each one.
            (None, None) => None,
        };
        let slice = match (slice, beat_slice) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        let Some(slice) = slice else {
            match rx.recv() {
                Ok(v) => break v,
                Err(_) => {
                    break Err("job thread died without reporting".into());
                }
            }
        };
        match rx.recv_timeout(slice) {
            Ok(v) => break v,
            Err(std::sync::mpsc::RecvTimeoutError::Timeout) => {}
            Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => {
                break Err("job thread died without reporting".into());
            }
        }
    };
    let peak = meter.peak_bytes();
    let result = match outcome {
        Ok(Ok(result)) => match mem_budget {
            Some(budget) if peak > budget => Err(JobError::MemBudget { used: peak, budget }),
            _ => Ok(result),
        },
        Ok(Err(sim)) => Err(JobError::Invalid(sim)),
        Err(panic_msg) => Err(JobError::Panicked(panic_msg)),
    };
    (result, peak)
}

/// Execute `jobs` with isolation, retries and journaling; `on_ok` is
/// invoked (from worker threads) with each successful result.
///
/// # Errors
///
/// Returns an I/O error only for journal file problems (opening or
/// reading it); simulation failures are reported in the
/// [`SweepReport`], never as `Err`.
pub fn run_sweep<F>(
    jobs: &[SweepJob],
    opts: &SweepOptions,
    on_ok: F,
) -> std::io::Result<SweepReport>
where
    F: Fn(&SweepJob, FrameResult) + Sync,
{
    let (done_keys, quarantined) = match (&opts.journal, opts.resume) {
        (Some(path), true) if path.exists() => {
            let text = std::fs::read_to_string(path)?;
            (completed_entries(&text), poisoned_entries(&text))
        }
        _ => (BTreeMap::new(), BTreeMap::new()),
    };
    let journal = match &opts.journal {
        Some(path) => {
            if let Some(dir) = path.parent() {
                std::fs::create_dir_all(dir)?;
            }
            Some(Mutex::new(
                std::fs::OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(path)?,
            ))
        }
        None => None,
    };

    let records: Mutex<Vec<JobRecord>> = Mutex::new(Vec::with_capacity(jobs.len()));
    let abort = AtomicBool::new(false);
    let next = AtomicUsize::new(0);
    // Progress-stream correlation fields: one pid per process, one
    // gap-free sequence counter per run (shared by all workers).
    let pid = std::process::id();
    let seq = AtomicU64::new(0);
    let workers = if opts.workers == 0 {
        jobs.len().clamp(1, 8)
    } else {
        opts.workers.clamp(1, jobs.len().max(1))
    };

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                if !opts.keep_going && abort.load(Ordering::Relaxed) {
                    break;
                }
                let index = next.fetch_add(1, Ordering::Relaxed);
                let Some(job) = jobs.get(index).copied() else {
                    break;
                };
                let key = job.key();
                // Out-of-shard jobs belong to another machine's run:
                // no record, no journal line.
                if opts.shard.is_some_and(|s| !s.contains(&key)) {
                    continue;
                }
                let config_hash = job.config_hash();
                let emit_obs = |kind, attempt, elapsed, peak, status, obs: Option<(&str, u64)>| {
                    if let Some(f) = opts.progress {
                        f(&Progress {
                            kind,
                            key: key.clone(),
                            index,
                            attempt,
                            elapsed,
                            peak_alloc_bytes: peak,
                            shard: opts.shard,
                            pid,
                            // Assigned at emit time so the stream's
                            // sequence numbers are gap-free even with
                            // events interleaving across workers.
                            seq: seq.fetch_add(1, Ordering::Relaxed),
                            status,
                            top_stall: obs.map(|(top, _)| top.to_string()),
                            dram_requests: obs.map(|(_, dram)| dram),
                        });
                    }
                };
                let emit = |kind, attempt, elapsed, peak, status| {
                    emit_obs(kind, attempt, elapsed, peak, status, None);
                };
                emit(ProgressKind::Start, 0, Duration::ZERO, 0, None);
                // Resume refuses to skip when the journaled config
                // hash differs from the job's: the old result was
                // produced by a different simulator configuration.
                // Pre-v2 lines carry no hash and stay skippable.
                let hash_matches = |h: &Option<u64>| h.is_none_or(|h| h == config_hash);
                if done_keys.get(&key).is_some_and(hash_matches) {
                    emit(
                        ProgressKind::Done,
                        0,
                        Duration::ZERO,
                        0,
                        Some(JobStatus::Skipped),
                    );
                    let record = JobRecord {
                        index,
                        key,
                        status: JobStatus::Skipped,
                        attempts: 0,
                        elapsed: Duration::ZERO,
                        error: None,
                        metrics: None,
                        config_hash,
                        peak_alloc: None,
                        shard: opts.shard,
                        obs: None,
                    };
                    records.lock().push(record);
                    continue;
                }
                // Poison quarantine: the fleet supervisor journaled
                // this job as having killed its shard repeatedly.
                // Record the failure without executing — and without
                // tripping the abort flag (the failure is historical,
                // already accounted; the restarted shard's purpose is
                // to get *past* it) or re-journaling (the supervisor's
                // line is already the key's latest entry).
                if let Some(entry) = quarantined
                    .get(&key)
                    .filter(|e| hash_matches(&e.config_hash))
                {
                    let deaths = u32::try_from(entry.attempts).unwrap_or(u32::MAX);
                    emit(
                        ProgressKind::Done,
                        deaths,
                        Duration::ZERO,
                        0,
                        Some(JobStatus::Failed),
                    );
                    records.lock().push(JobRecord {
                        index,
                        key,
                        status: JobStatus::Failed,
                        attempts: deaths,
                        elapsed: Duration::ZERO,
                        error: Some(JobError::Poisoned { deaths }),
                        metrics: None,
                        config_hash,
                        peak_alloc: None,
                        shard: opts.shard,
                        obs: None,
                    });
                    continue;
                }

                let started = Instant::now();
                let mut attempts = 0u32;
                let mut peak_alloc = 0u64;
                let outcome = loop {
                    attempts += 1;
                    emit(
                        ProgressKind::Attempt,
                        attempts,
                        started.elapsed(),
                        peak_alloc,
                        None,
                    );
                    let beat = |peak: u64| {
                        emit(
                            ProgressKind::Heartbeat,
                            attempts,
                            started.elapsed(),
                            peak,
                            None,
                        )
                    };
                    // A zero interval means "no heartbeats", not "as
                    // fast as possible": leave the pair unset so the
                    // watchdog below blocks instead of busy-looping.
                    let heartbeat = opts
                        .progress
                        .filter(|_| !opts.progress_heartbeat.is_zero())
                        .map(|_| (opts.progress_heartbeat, &beat as &dyn Fn(u64)));
                    let (attempt, peak) = run_attempt(
                        job,
                        opts.job_timeout,
                        opts.job_mem_budget,
                        heartbeat,
                        opts.prefix_cache.clone(),
                        opts.with_obs,
                    );
                    peak_alloc = peak_alloc.max(peak);
                    match attempt {
                        Ok(result) => break Ok(result),
                        Err(e) => {
                            if !e.retryable() || attempts > opts.retry.max_retries {
                                break Err(e);
                            }
                            emit(
                                ProgressKind::Retry,
                                attempts,
                                started.elapsed(),
                                peak_alloc,
                                None,
                            );
                            (opts.sleeper)(opts.retry.delay(attempts, fnv1a(key.as_bytes())));
                        }
                    }
                };
                let elapsed = started.elapsed();
                let terminal = if outcome.is_ok() {
                    JobStatus::Ok
                } else {
                    JobStatus::Failed
                };
                // Done events of rollup-probed jobs carry the headline
                // stall attribution inline.
                let done_obs = outcome.as_ref().ok().and_then(|(_, rollup)| {
                    rollup.as_ref().map(|r| (r.top_stall().0, r.dram_requests))
                });
                emit_obs(
                    ProgressKind::Done,
                    attempts,
                    elapsed,
                    peak_alloc,
                    Some(terminal),
                    done_obs,
                );

                let record = match outcome {
                    Ok((result, rollup)) => {
                        let metrics = JobMetrics::of(&result);
                        on_ok(&job, result);
                        JobRecord {
                            index,
                            key,
                            status: JobStatus::Ok,
                            attempts,
                            elapsed,
                            error: None,
                            metrics: Some(metrics),
                            config_hash,
                            peak_alloc: Some(peak_alloc),
                            shard: opts.shard,
                            obs: rollup,
                        }
                    }
                    Err(e) => {
                        abort.store(true, Ordering::Relaxed);
                        JobRecord {
                            index,
                            key,
                            status: JobStatus::Failed,
                            attempts,
                            elapsed,
                            error: Some(e),
                            metrics: None,
                            config_hash,
                            peak_alloc: Some(peak_alloc),
                            shard: opts.shard,
                            obs: None,
                        }
                    }
                };
                if let Some(j) = &journal {
                    let line = journal_line(&record);
                    let mut file = j.lock();
                    // Journal write failures must not kill the sweep;
                    // the in-memory report stays authoritative.
                    let _ = writeln!(file, "{line}");
                    let _ = file.flush();
                }
                records.lock().push(record);
            });
        }
    });

    let mut records = records.into_inner();
    records.sort_by_key(|r| r.index);
    let aborted = abort.load(Ordering::Relaxed) && !opts.keep_going;
    // Jobs never dispatched because of an abort still get a record, so
    // reports always cover the full job list — restricted, when
    // sharded, to the jobs this shard owns.
    let covered: BTreeSet<usize> = records.iter().map(|r| r.index).collect();
    for (index, job) in jobs.iter().enumerate() {
        if covered.contains(&index) {
            continue;
        }
        let key = job.key();
        if opts.shard.is_some_and(|s| !s.contains(&key)) {
            continue;
        }
        records.push(JobRecord {
            index,
            key,
            status: JobStatus::NotRun,
            attempts: 0,
            elapsed: Duration::ZERO,
            error: None,
            metrics: None,
            config_hash: job.config_hash(),
            peak_alloc: None,
            shard: opts.shard,
            obs: None,
        });
    }
    records.sort_by_key(|r| r.index);
    Ok(SweepReport { records, aborted })
}

// --- hand-rolled JSON (the vendored serde stand-in does not serialize) ---

/// Escape a string for embedding in a JSON string literal.
#[must_use]
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use std::fmt::Write as _;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// One journal line for a finished job (single-line JSON object).
#[must_use]
pub fn journal_line(r: &JobRecord) -> String {
    let mut s = format!(
        "{{\"key\":\"{}\",\"status\":\"{}\",\"attempts\":{},\"elapsed_ms\":{},\"config_hash\":\"{:016x}\"",
        json_escape(&r.key),
        r.status.name(),
        r.attempts,
        r.elapsed.as_millis(),
        r.config_hash
    );
    use std::fmt::Write as _;
    if let Some(m) = &r.metrics {
        let _ = write!(
            s,
            ",\"coupled_cycles\":{},\"decoupled_cycles\":{},\"l2_accesses\":{}",
            m.coupled_cycles, m.decoupled_cycles, m.l2_accesses
        );
    }
    if let Some(o) = &r.obs {
        let _ = write!(s, ",\"obs\":{}", o.to_json());
    }
    if let Some(p) = r.peak_alloc {
        let _ = write!(s, ",\"peak_alloc_bytes\":{p}");
    }
    if let Some(shard) = r.shard {
        let _ = write!(s, ",\"shard\":\"{shard}\"");
    }
    if let Some(e) = &r.error {
        let _ = write!(
            s,
            ",\"error_kind\":\"{}\",\"error\":\"{}\"",
            e.kind(),
            json_escape(&e.to_string())
        );
    }
    s.push('}');
    s
}

/// Extract a string field from a single-line JSON object (minimal
/// parser for the journal's own output; tolerates unknown fields).
/// `pub(crate)`: the spool and daemon modules parse their own
/// hand-rolled documents (batch lines, status files) with the same
/// helpers so every wire format in the crate shares one dialect.
pub(crate) fn field_str(line: &str, field: &str) -> Option<String> {
    let tag = format!("\"{field}\":\"");
    let start = line.find(&tag)? + tag.len();
    let rest = &line[start..];
    let mut out = String::new();
    let mut chars = rest.chars();
    while let Some(c) = chars.next() {
        match c {
            '"' => return Some(out),
            '\\' => match chars.next()? {
                'n' => out.push('\n'),
                'r' => out.push('\r'),
                't' => out.push('\t'),
                'u' => {
                    let hex: String = chars.by_ref().take(4).collect();
                    let code = u32::from_str_radix(&hex, 16).ok()?;
                    out.push(char::from_u32(code)?);
                }
                other => out.push(other),
            },
            c => out.push(c),
        }
    }
    None
}

/// Extract an unsigned integer field from a single-line JSON object.
pub(crate) fn field_u64(line: &str, field: &str) -> Option<u64> {
    let tag = format!("\"{field}\":");
    let start = line.find(&tag)? + tag.len();
    let digits: String = line[start..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect();
    digits.parse().ok()
}

/// A parsed journal entry (the fields resume and tests need).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalEntry {
    /// Job identity.
    pub key: String,
    /// `"ok"`, `"failed"`, `"skipped"` or `"not_run"`.
    pub status: String,
    /// Attempts consumed.
    pub attempts: u64,
    /// Journaled wall time in milliseconds (0 on lines that never ran
    /// or pre-dated the field). The daemon's job-wall-clock histogram
    /// is fed from this.
    pub elapsed_ms: u64,
    /// Journaled metrics, when the entry is `ok`.
    pub metrics: Option<JobMetrics>,
    /// Journaled per-job probe rollup, on `--with-obs` `ok` entries.
    pub obs: Option<ObsRollup>,
    /// Journal-v2 config hash; `None` on pre-v2 lines.
    pub config_hash: Option<u64>,
    /// Allocator high-water mark (bytes); `None` on lines written
    /// before memory metering or for jobs that never ran.
    pub peak_alloc_bytes: Option<u64>,
    /// The shard that produced the line, when the run was sharded.
    pub shard: Option<Shard>,
    /// Journaled `error_kind` tag, for failed entries.
    pub error_kind: Option<String>,
}

/// Parse one journal line; `None` for blank, truncated or corrupt
/// lines (a killed process may leave a partial final line — resume
/// must shrug it off).
#[must_use]
pub fn parse_journal_line(line: &str) -> Option<JournalEntry> {
    let line = line.trim();
    if line.is_empty() || !line.starts_with('{') || !line.ends_with('}') {
        return None;
    }
    let key = field_str(line, "key")?;
    let status = field_str(line, "status")?;
    let metrics = match (
        field_u64(line, "coupled_cycles"),
        field_u64(line, "decoupled_cycles"),
        field_u64(line, "l2_accesses"),
    ) {
        (Some(c), Some(d), Some(l)) => Some(JobMetrics {
            coupled_cycles: c,
            decoupled_cycles: d,
            l2_accesses: l,
        }),
        _ => None,
    };
    // The rollup object contains no nested braces (pinned by its own
    // tests), so slicing from its opening brace to the next `}` is
    // exact.
    let obs = line.find("\"obs\":{").and_then(|at| {
        let body = &line[at + "\"obs\":".len()..];
        ObsRollup::parse(&body[..=body.find('}')?])
    });
    Some(JournalEntry {
        key,
        status,
        attempts: field_u64(line, "attempts").unwrap_or(0),
        elapsed_ms: field_u64(line, "elapsed_ms").unwrap_or(0),
        metrics,
        obs,
        config_hash: field_str(line, "config_hash").and_then(|h| u64::from_str_radix(&h, 16).ok()),
        peak_alloc_bytes: field_u64(line, "peak_alloc_bytes"),
        shard: field_str(line, "shard").and_then(|s| s.parse().ok()),
        error_kind: field_str(line, "error_kind"),
    })
}

/// The set of job keys whose **latest** journal entry is `ok` or
/// `skipped` (last-wins: a later failed re-run invalidates an earlier
/// success).
#[must_use]
pub fn completed_keys(journal: &str) -> BTreeSet<String> {
    completed_entries(journal).into_keys().collect()
}

/// Like [`completed_keys`], but paired with each entry's journaled
/// [config hash](SweepJob::config_hash) (`None` on pre-v2 lines).
/// Resume uses the hash to refuse skipping jobs whose configuration
/// drifted since the journal was written.
#[must_use]
pub fn completed_entries(journal: &str) -> BTreeMap<String, Option<u64>> {
    latest_entries(journal)
        .into_iter()
        .filter(|(_, e)| e.status == "ok" || e.status == "skipped")
        .map(|(k, e)| (k, e.config_hash))
        .collect()
}

/// The **latest** journal entry per key (last-wins over the whole
/// file), ignoring unparseable lines.
#[must_use]
pub fn latest_entries(journal: &str) -> BTreeMap<String, JournalEntry> {
    let mut latest: BTreeMap<String, JournalEntry> = BTreeMap::new();
    for line in journal.lines() {
        if let Some(e) = parse_journal_line(line) {
            latest.insert(e.key.clone(), e);
        }
    }
    latest
}

/// Job keys whose latest journal entry is a supervisor-written poison
/// quarantine (`status:"failed"`, `error_kind:"poisoned"`), mapped to
/// that entry. A resuming sweep fails these jobs without executing
/// them (see [`JobError::Poisoned`]); any later `ok`/`failed` line —
/// e.g. from a deliberate re-attempt without `--resume` — lifts the
/// quarantine because only the *latest* entry counts.
#[must_use]
pub fn poisoned_entries(journal: &str) -> BTreeMap<String, JournalEntry> {
    latest_entries(journal)
        .into_iter()
        .filter(|(_, e)| e.status == "failed" && e.error_kind.as_deref() == Some("poisoned"))
        .collect()
}

// --- shard-journal merge ---------------------------------------------------

/// Why merging shard journals failed.
#[derive(Debug)]
pub enum MergeError {
    /// An input journal could not be read, or the output written.
    Io {
        /// The file involved.
        path: PathBuf,
        /// The underlying I/O error.
        source: std::io::Error,
    },
    /// Two `ok` records for the same key *and the same config hash*
    /// disagree on metrics. The simulator is deterministic, so equal
    /// configurations must produce bit-identical metrics — divergence
    /// means corruption or mixed simulator builds, and is never
    /// auto-resolved.
    Divergent {
        /// The job key both records claim.
        key: String,
        /// The config hash both records carry.
        config_hash: u64,
        /// Metrics from the record seen first.
        first: JobMetrics,
        /// Metrics from the conflicting later record.
        second: JobMetrics,
    },
}

impl fmt::Display for MergeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MergeError::Io { path, source } => {
                write!(f, "journal {}: {source}", path.display())
            }
            MergeError::Divergent {
                key,
                config_hash,
                first,
                second,
            } => write!(
                f,
                "divergent records for `{key}` (config {config_hash:016x}): \
                 {first:?} vs {second:?} — same configuration must be bit-identical"
            ),
        }
    }
}

impl std::error::Error for MergeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MergeError::Io { source, .. } => Some(source),
            MergeError::Divergent { .. } => None,
        }
    }
}

/// Bookkeeping from one merge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MergeStats {
    /// Input journals consumed.
    pub journals: usize,
    /// Parseable records read across all inputs.
    pub lines: usize,
    /// Non-blank lines that did not parse (corrupt / truncated) and
    /// were dropped.
    pub corrupt: usize,
    /// Unique keys in the merged output.
    pub records: usize,
    /// Records replaced by a later entry for the same key (duplicates
    /// across shards, or re-runs within one journal).
    pub superseded: usize,
    /// `failed` records dropped because an `ok` record with the same
    /// key *and* config hash was also present (ok-over-failed
    /// preference; counted separately from `superseded` so losing a
    /// completed result is never silent).
    pub failed_ignored: usize,
}

/// Incremental journal-merge state: the fold underneath
/// [`merge_journal_texts`], exposed so a live merger (the sweep
/// daemon) can feed shard-journal lines *as they are appended* and
/// re-render the merged view at any point, with semantics identical
/// to a one-shot merge of the same lines.
///
/// Last-wins per key, with two carve-outs that make the result
/// independent of feed order: (1) two `ok` records sharing a key
/// *and* a config hash must agree on metrics
/// ([`MergeError::Divergent`] otherwise) — checked against *every*
/// `ok` record seen for that configuration, not just the current
/// per-key winner, so interleaved records with other hashes cannot
/// mask a divergence; (2) a `failed` record never displaces an `ok`
/// record carrying the same config hash — merge inputs have no time
/// order, and the deterministic `ok` metrics are strictly more
/// informative than a transient failure (dropped records are counted
/// in [`MergeStats::failed_ignored`]). A record with a *different*
/// hash simply supersedes the earlier one — the configuration drifted
/// and the later run is authoritative, exactly as in-journal resume
/// semantics.
///
/// The rendered output ([`render`](Self::render)) is the winning
/// verbatim input lines sorted by key — a pure function of the fed
/// line *set*'s winners, so a daemon that crashes mid-merge and
/// re-folds the shard journals from byte 0 reproduces the merged file
/// bit-identically.
#[derive(Debug, Default)]
pub struct MergeAccumulator {
    winners: BTreeMap<String, (JournalEntry, String)>,
    /// First-seen `ok` metrics per (key, config hash) — the divergence
    /// guarantee is order-independent, so it must survive a record
    /// with a different hash being interleaved between two divergent
    /// ones.
    seen_ok: BTreeMap<(String, u64), JobMetrics>,
    stats: MergeStats,
}

impl MergeAccumulator {
    /// An empty accumulator (no lines folded, zero stats).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Fold one journal line. Blank lines are ignored; unparseable
    /// ones are counted corrupt and dropped.
    ///
    /// # Errors
    ///
    /// [`MergeError::Divergent`] when the line's `ok` metrics
    /// contradict an earlier `ok` record for the same key and config
    /// hash. The accumulator is left as of the previous line; callers
    /// should stop feeding it (divergence means corruption or mixed
    /// simulator builds and is never auto-resolved).
    pub fn fold_line(&mut self, line: &str) -> Result<(), MergeError> {
        let trimmed = line.trim();
        if trimmed.is_empty() {
            return Ok(());
        }
        let Some(entry) = parse_journal_line(trimmed) else {
            self.stats.corrupt += 1;
            return Ok(());
        };
        self.stats.lines += 1;
        if entry.status == "ok" {
            if let (Some(h), Some(m)) = (entry.config_hash, entry.metrics) {
                match self.seen_ok.entry((entry.key.clone(), h)) {
                    std::collections::btree_map::Entry::Occupied(first) => {
                        if *first.get() != m {
                            return Err(MergeError::Divergent {
                                key: entry.key,
                                config_hash: h,
                                first: *first.get(),
                                second: m,
                            });
                        }
                    }
                    std::collections::btree_map::Entry::Vacant(slot) => {
                        slot.insert(m);
                    }
                }
            }
        }
        // `ok` beats a non-`ok` record for the same configuration
        // regardless of encounter order.
        let ok_over_failed = |ok: &JournalEntry, other: &JournalEntry| {
            ok.status == "ok"
                && other.status != "ok"
                && ok.config_hash.is_some()
                && ok.config_hash == other.config_hash
        };
        match self.winners.get(&entry.key) {
            Some((prev, _)) if ok_over_failed(prev, &entry) => {
                self.stats.failed_ignored += 1;
            }
            Some((prev, _)) => {
                if ok_over_failed(&entry, prev) {
                    self.stats.failed_ignored += 1;
                } else {
                    self.stats.superseded += 1;
                }
                self.winners
                    .insert(entry.key.clone(), (entry, trimmed.to_string()));
            }
            None => {
                self.winners
                    .insert(entry.key.clone(), (entry, trimmed.to_string()));
            }
        }
        Ok(())
    }

    /// Fold every line of one journal text, bumping the input-journal
    /// counter.
    ///
    /// # Errors
    ///
    /// Propagates the first [`MergeError::Divergent`] from
    /// [`fold_line`](Self::fold_line).
    pub fn fold_text(&mut self, text: &str) -> Result<(), MergeError> {
        self.stats.journals += 1;
        for line in text.lines() {
            self.fold_line(line)?;
        }
        Ok(())
    }

    /// Current merge statistics ([`MergeStats::records`] reflects the
    /// winner count as of the last fold).
    #[must_use]
    pub fn stats(&self) -> MergeStats {
        MergeStats {
            records: self.winners.len(),
            ..self.stats
        }
    }

    /// The current winning entry per key (the merged journal's
    /// last-wins view), for coverage and status queries.
    pub fn latest(&self) -> impl Iterator<Item = (&String, &JournalEntry)> {
        self.winners.iter().map(|(k, (e, _))| (k, e))
    }

    /// The current winning entry for one key.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&JournalEntry> {
        self.winners.get(key).map(|(e, _)| e)
    }

    /// Render the merged journal: the winning verbatim input lines,
    /// sorted by key, one per line with a trailing newline each.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (_, line) in self.winners.values() {
            out.push_str(line);
            out.push('\n');
        }
        out
    }
}

/// Union journal texts (in argument order, lines in file order)
/// through a [`MergeAccumulator`] — see its docs for the last-wins /
/// ok-over-failed / divergence semantics. Output lines are the
/// winning verbatim input lines, sorted by key.
///
/// # Errors
///
/// Only [`MergeError::Divergent`]; the text-level API does no I/O.
pub fn merge_journal_texts(texts: &[String]) -> Result<(String, MergeStats), MergeError> {
    let mut acc = MergeAccumulator::new();
    for text in texts {
        acc.fold_text(text)?;
    }
    Ok((acc.render(), acc.stats()))
}

/// Render a journal text's latest `ok` records in the canonical,
/// sorted `key|config_hash|coupled|decoupled|l2` form (one line each,
/// trailing newline). Volatile fields (wall time, peak allocation,
/// shard) are omitted, so two journals that simulated the same jobs
/// canonicalize identically — `dtexl sweep canon` prints this form
/// and CI diffs runs through it; the daemon's live merger maintains
/// the same view on disk next to the merged journal.
#[must_use]
pub fn canon_text(journal: &str) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    for (key, e) in latest_entries(journal) {
        if e.status != "ok" {
            continue;
        }
        let Some(m) = e.metrics else { continue };
        let _ = writeln!(
            out,
            "{key}|{:016x}|{}|{}|{}",
            e.config_hash.unwrap_or(0),
            m.coupled_cycles,
            m.decoupled_cycles,
            m.l2_accesses
        );
    }
    out
}

/// File-level [`merge_journal_texts`]: read `inputs` in order, write
/// the merged journal to `out` (parent directories created). The
/// merged file is itself a valid journal — `--resume` against it skips
/// everything the shards completed.
///
/// # Errors
///
/// [`MergeError::Io`] for unreadable inputs or an unwritable output,
/// [`MergeError::Divergent`] per [`merge_journal_texts`].
pub fn merge_journals(inputs: &[PathBuf], out: &Path) -> Result<MergeStats, MergeError> {
    let mut texts = Vec::with_capacity(inputs.len());
    for path in inputs {
        texts.push(
            std::fs::read_to_string(path).map_err(|source| MergeError::Io {
                path: path.clone(),
                source,
            })?,
        );
    }
    let (merged, stats) = merge_journal_texts(&texts)?;
    if let Some(dir) = out.parent() {
        std::fs::create_dir_all(dir).map_err(|source| MergeError::Io {
            path: out.to_path_buf(),
            source,
        })?;
    }
    std::fs::write(out, merged).map_err(|source| MergeError::Io {
        path: out.to_path_buf(),
        source,
    })?;
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_job(game: Game) -> SweepJob {
        SweepJob::new(game, ScheduleConfig::baseline(), false, 96, 64, 0)
    }

    #[test]
    fn journal_roundtrips_ok_and_failed_records() {
        let ok = JobRecord {
            index: 0,
            key: "CCS|x|base|96x64#0".into(),
            status: JobStatus::Ok,
            attempts: 2,
            elapsed: Duration::from_millis(7),
            error: None,
            metrics: Some(JobMetrics {
                coupled_cycles: 100,
                decoupled_cycles: 90,
                l2_accesses: 5,
            }),
            config_hash: 0xdead_beef_0042,
            peak_alloc: Some(1_482_336),
            shard: Some(Shard { index: 1, count: 3 }),
            obs: Some(ObsRollup {
                l1_hits: 40,
                dram_requests: 3,
                ..ObsRollup::default()
            }),
        };
        let line = journal_line(&ok);
        let e = parse_journal_line(&line).unwrap();
        assert_eq!(e.key, ok.key);
        assert_eq!(e.status, "ok");
        assert_eq!(e.attempts, 2);
        assert_eq!(e.elapsed_ms, 7);
        assert_eq!(e.metrics, ok.metrics);
        assert_eq!(e.obs, ok.obs);
        assert_eq!(e.config_hash, Some(0xdead_beef_0042));
        assert_eq!(e.peak_alloc_bytes, Some(1_482_336));
        assert_eq!(e.shard, Some(Shard { index: 1, count: 3 }));
        assert_eq!(e.error_kind, None);

        let failed = JobRecord {
            error: Some(JobError::Panicked("boom \"quoted\"\npath".into())),
            status: JobStatus::Failed,
            metrics: None,
            ..ok
        };
        let line = journal_line(&failed);
        let e = parse_journal_line(&line).unwrap();
        assert_eq!(e.status, "failed");
        assert_eq!(e.metrics, None);
        assert_eq!(e.error_kind.as_deref(), Some("panic"));
        assert!(field_str(&line, "error")
            .unwrap()
            .contains("boom \"quoted\""));
    }

    #[test]
    fn mem_budget_errors_journal_their_kind_and_are_not_retryable() {
        let e = JobError::MemBudget {
            used: 20 << 20,
            budget: 16 << 20,
        };
        assert!(!e.retryable(), "deterministic at a fixed budget");
        assert_eq!(e.kind(), "mem_budget");
        assert!(e.to_string().contains("memory budget"));
    }

    #[test]
    fn shard_spec_parses_displays_and_validates() {
        let s: Shard = "0/2".parse().unwrap();
        assert_eq!(s, Shard { index: 0, count: 2 });
        assert_eq!(s.to_string(), "0/2");
        assert_eq!("2/3".parse::<Shard>().unwrap().index, 2);
        assert!(matches!(
            "3/3".parse::<Shard>(),
            Err(ParseShardError::IndexOutOfRange { index: 3, count: 3 })
        ));
        assert!(matches!(
            "0/0".parse::<Shard>(),
            Err(ParseShardError::ZeroCount)
        ));
        assert!(matches!(
            "nope".parse::<Shard>(),
            Err(ParseShardError::Malformed(_))
        ));
        assert!(matches!(
            "1".parse::<Shard>(),
            Err(ParseShardError::Malformed(_))
        ));
    }

    #[test]
    fn shards_partition_keys_exactly_once() {
        let keys: Vec<String> = (0..40).map(|i| format!("job-{i}|base|96x64#0")).collect();
        for count in [1u32, 2, 3, 5] {
            for key in &keys {
                let owners = (0..count)
                    .filter(|&i| Shard { index: i, count }.contains(key))
                    .count();
                assert_eq!(owners, 1, "{key} under {count} shards");
            }
        }
        // Hash-of-key assignment: position in the list is irrelevant,
        // so appending jobs cannot move existing ones across shards.
        for key in &keys {
            assert_eq!(shard_of(key, 3), shard_of(key, 3));
        }
    }

    #[test]
    fn sharded_sweep_runs_only_its_slice_and_stamps_records() {
        let jobs: Vec<SweepJob> = [Game::CandyCrush, Game::TempleRun, Game::Maze]
            .into_iter()
            .map(tiny_job)
            .collect();
        let shard = Shard { index: 0, count: 2 };
        let opts = SweepOptions {
            shard: Some(shard),
            ..SweepOptions::default()
        };
        let report = run_sweep(&jobs, &opts, |_, _| {}).unwrap();
        let expected: Vec<&SweepJob> = jobs.iter().filter(|j| shard.contains(&j.key())).collect();
        assert!(!expected.is_empty() && expected.len() < jobs.len());
        assert_eq!(report.records.len(), expected.len());
        for r in &report.records {
            assert_eq!(r.status, JobStatus::Ok);
            assert_eq!(r.shard, Some(shard));
            assert!(r.peak_alloc.unwrap() > 0, "attempted jobs carry a peak");
        }
        assert!(report.is_success());
    }

    #[test]
    fn merge_unions_shards_and_dedups_identical_records() {
        let a = "{\"key\":\"a\",\"status\":\"ok\",\"config_hash\":\"0000000000000001\",\"coupled_cycles\":10,\"decoupled_cycles\":9,\"l2_accesses\":3}\n".to_string();
        let b = "{\"key\":\"b\",\"status\":\"ok\",\"config_hash\":\"0000000000000002\",\"coupled_cycles\":20,\"decoupled_cycles\":18,\"l2_accesses\":6}\n".to_string();
        let (merged, stats) = merge_journal_texts(&[a.clone(), b, a]).unwrap();
        assert_eq!(stats.journals, 3);
        assert_eq!(stats.lines, 3);
        assert_eq!(stats.records, 2);
        assert_eq!(stats.superseded, 1, "the duplicate `a` was deduped");
        assert_eq!(stats.corrupt, 0);
        let keys: Vec<String> = merged
            .lines()
            .map(|l| parse_journal_line(l).unwrap().key)
            .collect();
        assert_eq!(keys, ["a", "b"], "sorted by key");
    }

    #[test]
    fn merge_rejects_divergent_metrics_for_equal_hashes() {
        let a = "{\"key\":\"a\",\"status\":\"ok\",\"config_hash\":\"00000000000000aa\",\"coupled_cycles\":10,\"decoupled_cycles\":9,\"l2_accesses\":3}\n".to_string();
        let twisted = a.replace("\"l2_accesses\":3", "\"l2_accesses\":4");
        let err = merge_journal_texts(&[a, twisted]).unwrap_err();
        match err {
            MergeError::Divergent {
                key,
                config_hash,
                first,
                second,
            } => {
                assert_eq!(key, "a");
                assert_eq!(config_hash, 0xaa);
                assert_eq!(first.l2_accesses, 3);
                assert_eq!(second.l2_accesses, 4);
            }
            other => panic!("expected Divergent, got {other:?}"),
        }
    }

    #[test]
    fn merge_divergence_survives_interleaved_hashes() {
        // A record with a *different* hash between two divergent ones
        // must not reset the check: divergence is per (key, hash),
        // independent of record order.
        let ok1 = "{\"key\":\"a\",\"status\":\"ok\",\"config_hash\":\"00000000000000aa\",\"coupled_cycles\":10,\"decoupled_cycles\":9,\"l2_accesses\":3}\n".to_string();
        let drift = "{\"key\":\"a\",\"status\":\"ok\",\"config_hash\":\"00000000000000bb\",\"coupled_cycles\":50,\"decoupled_cycles\":40,\"l2_accesses\":5}\n".to_string();
        let twisted = ok1.replace("\"l2_accesses\":3", "\"l2_accesses\":4");
        let err = merge_journal_texts(&[ok1, drift, twisted]).unwrap_err();
        match err {
            MergeError::Divergent {
                key, config_hash, ..
            } => {
                assert_eq!(key, "a");
                assert_eq!(config_hash, 0xaa);
            }
            other => panic!("expected Divergent, got {other:?}"),
        }
    }

    #[test]
    fn merge_prefers_ok_over_failed_for_equal_hashes_in_either_order() {
        let ok = "{\"key\":\"a\",\"status\":\"ok\",\"config_hash\":\"0000000000000001\",\"coupled_cycles\":10,\"decoupled_cycles\":9,\"l2_accesses\":3}\n".to_string();
        let failed = "{\"key\":\"a\",\"status\":\"failed\",\"config_hash\":\"0000000000000001\",\"error_kind\":\"timeout\",\"error\":\"x\"}\n".to_string();
        for inputs in [[ok.clone(), failed.clone()], [failed.clone(), ok.clone()]] {
            let (merged, stats) = merge_journal_texts(&inputs).unwrap();
            let e = parse_journal_line(merged.trim()).unwrap();
            assert_eq!(e.status, "ok", "completed result survives either order");
            assert_eq!(stats.records, 1);
            assert_eq!(stats.superseded, 0);
            assert_eq!(stats.failed_ignored, 1, "the drop is visible in stats");
        }
    }

    #[test]
    fn merge_lets_a_failed_record_with_a_newer_hash_supersede_ok() {
        // ok-over-failed applies only to the *same* configuration; a
        // drifted config keeps last-wins (resume must re-run the job).
        let ok = "{\"key\":\"a\",\"status\":\"ok\",\"config_hash\":\"0000000000000001\",\"coupled_cycles\":10,\"decoupled_cycles\":9,\"l2_accesses\":3}\n".to_string();
        let failed = "{\"key\":\"a\",\"status\":\"failed\",\"config_hash\":\"0000000000000002\",\"error_kind\":\"timeout\",\"error\":\"x\"}\n".to_string();
        let (merged, stats) = merge_journal_texts(&[ok, failed]).unwrap();
        let e = parse_journal_line(merged.trim()).unwrap();
        assert_eq!(e.status, "failed");
        assert_eq!(e.config_hash, Some(2));
        assert_eq!(stats.superseded, 1);
        assert_eq!(stats.failed_ignored, 0);
    }

    #[test]
    fn merge_lets_a_newer_config_hash_supersede() {
        let old = "{\"key\":\"a\",\"status\":\"ok\",\"config_hash\":\"0000000000000001\",\"coupled_cycles\":10,\"decoupled_cycles\":9,\"l2_accesses\":3}\n".to_string();
        let new = "{\"key\":\"a\",\"status\":\"ok\",\"config_hash\":\"0000000000000002\",\"coupled_cycles\":99,\"decoupled_cycles\":80,\"l2_accesses\":7}\n".to_string();
        let (merged, stats) = merge_journal_texts(&[old, new]).unwrap();
        assert_eq!(stats.records, 1);
        assert_eq!(stats.superseded, 1);
        let e = parse_journal_line(merged.trim()).unwrap();
        assert_eq!(e.config_hash, Some(2), "config drift: the later run wins");
        assert_eq!(e.metrics.unwrap().l2_accesses, 7);
    }

    #[test]
    fn merge_tolerates_corrupt_pre_v2_and_empty_inputs() {
        let shard0 = concat!(
            "{\"key\":\"a\",\"status\":\"ok\"}\n", // pre-v2: no hash, no metrics
            "{\"key\":\"b\",\"status\":\"fail",    // truncated by a kill
        )
        .to_string();
        let shard1 = concat!(
            "garbage line\n",
            "{\"key\":\"c\",\"status\":\"failed\",\"config_hash\":\"0000000000000003\",\"error_kind\":\"timeout\",\"error\":\"x\"}\n",
        )
        .to_string();
        let empty = String::new();
        let (merged, stats) = merge_journal_texts(&[shard0, shard1, empty]).unwrap();
        assert_eq!(stats.journals, 3);
        assert_eq!(stats.lines, 2);
        assert_eq!(stats.corrupt, 2, "truncated + garbage lines dropped");
        assert_eq!(stats.records, 2);
        let entries: Vec<JournalEntry> = merged
            .lines()
            .map(|l| parse_journal_line(l).unwrap())
            .collect();
        assert_eq!(entries[0].key, "a");
        assert_eq!(entries[0].config_hash, None, "pre-v2 line passes through");
        assert_eq!(entries[1].error_kind.as_deref(), Some("timeout"));
    }

    #[test]
    fn merged_file_resumes_like_a_single_journal() {
        let dir = std::env::temp_dir().join(format!("dtexl_sweep_merge_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let jobs: Vec<SweepJob> = [Game::CandyCrush, Game::TempleRun, Game::Maze]
            .into_iter()
            .map(tiny_job)
            .collect();
        let mut shard_paths = Vec::new();
        for index in 0..2u32 {
            let path = dir.join(format!("shard{index}.jsonl"));
            let _ = std::fs::remove_file(&path);
            let opts = SweepOptions {
                shard: Some(Shard { index, count: 2 }),
                journal: Some(path.clone()),
                ..SweepOptions::default()
            };
            assert!(run_sweep(&jobs, &opts, |_, _| {}).unwrap().is_success());
            shard_paths.push(path);
        }
        let merged = dir.join("merged.jsonl");
        let stats = merge_journals(&shard_paths, &merged).unwrap();
        assert_eq!(stats.records, jobs.len(), "shards cover the full list");

        let opts = SweepOptions {
            journal: Some(merged),
            resume: true,
            ..SweepOptions::default()
        };
        let ran = AtomicUsize::new(0);
        let report = run_sweep(&jobs, &opts, |_, _| {
            ran.fetch_add(1, Ordering::Relaxed);
        })
        .unwrap();
        assert_eq!(ran.load(Ordering::Relaxed), 0, "merged journal resumes");
        assert!(report
            .records
            .iter()
            .all(|r| r.status == JobStatus::Skipped));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn report_table_lists_every_job_with_peaks() {
        let jobs = vec![tiny_job(Game::CandyCrush), tiny_job(Game::TempleRun)];
        let report = run_sweep(&jobs, &SweepOptions::default(), |_, _| {}).unwrap();
        let table = report.table();
        assert!(table.starts_with("key"), "{table}");
        for r in &report.records {
            assert!(table.contains(&r.key), "{table}");
        }
        assert!(table.contains("MiB"), "peaks rendered: {table}");
    }

    #[test]
    fn corrupt_or_partial_lines_are_ignored() {
        assert_eq!(parse_journal_line(""), None);
        assert_eq!(parse_journal_line("{\"key\":\"x\",\"status\":\"o"), None);
        assert_eq!(parse_journal_line("not json at all"), None);
        let keys = completed_keys("{\"key\":\"a\",\"status\":\"ok\"}\ngarbage\n");
        assert!(keys.contains("a"));
        assert_eq!(keys.len(), 1);
    }

    #[test]
    fn completed_keys_are_last_wins() {
        let journal = concat!(
            "{\"key\":\"a\",\"status\":\"ok\"}\n",
            "{\"key\":\"b\",\"status\":\"failed\"}\n",
            "{\"key\":\"a\",\"status\":\"failed\"}\n",
            "{\"key\":\"c\",\"status\":\"ok\"}\n",
        );
        let keys = completed_keys(journal);
        assert!(!keys.contains("a"), "later failure invalidates success");
        assert!(!keys.contains("b"));
        assert!(keys.contains("c"));
    }

    #[test]
    fn invalid_jobs_fail_typed_and_are_not_retried() {
        let mut job = tiny_job(Game::CandyCrush);
        job.pipeline.num_sc = 8;
        let opts = SweepOptions {
            keep_going: true,
            retry: RetryPolicy {
                max_retries: 3,
                backoff: Duration::from_millis(1),
            },
            ..SweepOptions::default()
        };
        let report = run_sweep(&[job], &opts, |_, _| {}).unwrap();
        let r = &report.records[0];
        assert_eq!(r.status, JobStatus::Failed);
        assert_eq!(r.attempts, 1, "Invalid is not retryable");
        assert!(matches!(r.error, Some(JobError::Invalid(_))));
        assert!(!report.is_success());
        assert!(report.summary().contains("num_sc = 8"));
    }

    #[test]
    fn timeouts_are_detected_and_retried() {
        let mut job = tiny_job(Game::CandyCrush);
        job.pipeline.fault.wall_stall_ms = 5_000;
        let opts = SweepOptions {
            keep_going: true,
            job_timeout: Some(Duration::from_millis(50)),
            retry: RetryPolicy {
                max_retries: 1,
                backoff: Duration::from_millis(1),
            },
            ..SweepOptions::default()
        };
        let report = run_sweep(&[job], &opts, |_, _| {}).unwrap();
        let r = &report.records[0];
        assert_eq!(r.status, JobStatus::Failed);
        assert_eq!(r.attempts, 2, "timeout consumed the one retry");
        assert!(matches!(r.error, Some(JobError::TimedOut { .. })));
    }

    #[test]
    fn abort_mode_stops_dispatch_and_marks_not_run() {
        let mut bad = tiny_job(Game::CandyCrush);
        bad.pipeline.num_sc = 8;
        // Serial worker: the bad job fails first, the rest never run.
        let jobs = vec![bad, tiny_job(Game::TempleRun), tiny_job(Game::Maze)];
        let opts = SweepOptions {
            workers: 1,
            keep_going: false,
            ..SweepOptions::default()
        };
        let report = run_sweep(&jobs, &opts, |_, _| {}).unwrap();
        assert!(report.aborted);
        assert_eq!(report.records[0].status, JobStatus::Failed);
        assert_eq!(report.records[1].status, JobStatus::NotRun);
        assert_eq!(report.records[2].status, JobStatus::NotRun);
        assert!(report.summary().contains("aborted"));
    }

    #[test]
    fn keep_going_completes_good_jobs_around_a_bad_one() {
        let mut bad = tiny_job(Game::CandyCrush);
        bad.pipeline.num_sc = 8;
        let good = tiny_job(Game::TempleRun);
        let jobs = vec![good, bad, tiny_job(Game::Maze)];
        let opts = SweepOptions {
            keep_going: true,
            ..SweepOptions::default()
        };
        let done = Mutex::new(Vec::new());
        let report = run_sweep(&jobs, &opts, |job, _| done.lock().push(job.key())).unwrap();
        assert!(!report.aborted);
        assert_eq!(report.completed(), 2);
        assert_eq!(report.failed().len(), 1);
        assert_eq!(done.lock().len(), 2);
    }

    #[test]
    fn resume_skips_journaled_ok_jobs() {
        let dir = std::env::temp_dir().join(format!("dtexl_sweep_unit_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let journal = dir.join("journal.jsonl");
        let _ = std::fs::remove_file(&journal);

        let jobs = vec![tiny_job(Game::CandyCrush), tiny_job(Game::TempleRun)];
        let opts = SweepOptions {
            journal: Some(journal.clone()),
            ..SweepOptions::default()
        };
        let first = run_sweep(&jobs, &opts, |_, _| {}).unwrap();
        assert!(first.is_success());

        let opts = SweepOptions {
            resume: true,
            ..opts
        };
        let ran = AtomicUsize::new(0);
        let second = run_sweep(&jobs, &opts, |_, _| {
            ran.fetch_add(1, Ordering::Relaxed);
        })
        .unwrap();
        assert!(second.is_success());
        assert_eq!(ran.load(Ordering::Relaxed), 0, "everything was skipped");
        assert!(second
            .records
            .iter()
            .all(|r| r.status == JobStatus::Skipped));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn backoff_is_exponential_deterministic_and_bounded() {
        let policy = RetryPolicy {
            max_retries: 10,
            backoff: Duration::from_millis(8),
        };
        let salt = fnv1a(b"some job key");
        for attempt in 1..=10 {
            let d = policy.delay(attempt, salt);
            // Replayable: the schedule is a pure function of (attempt, salt).
            assert_eq!(d, policy.delay(attempt, salt), "attempt {attempt}");
            let base = policy
                .backoff
                .saturating_mul(1 << attempt.saturating_sub(1).min(6));
            assert!(d >= base, "attempt {attempt}: {d:?} < base {base:?}");
            assert!(
                d < base + policy.backoff / 2,
                "attempt {attempt}: jitter exceeds backoff/2"
            );
        }
        // Doubling: attempt 2's floor is twice attempt 1's.
        assert!(policy.delay(2, salt) + policy.backoff >= policy.delay(1, salt) * 2);
        // Capped at x64: attempts 7 and beyond share a floor.
        let floor = policy.backoff * 64;
        assert!(policy.delay(7, salt) >= floor && policy.delay(7, salt) < floor + policy.backoff);
        assert!(policy.delay(9, salt) >= floor && policy.delay(9, salt) < floor + policy.backoff);
        // Different salts decorrelate the jitter stream.
        assert_ne!(policy.delay(1, salt), policy.delay(1, salt ^ 1));
        // A zero backoff never sleeps (and never divides by zero).
        let zero = RetryPolicy {
            max_retries: 1,
            backoff: Duration::ZERO,
        };
        assert_eq!(zero.delay(3, salt), Duration::ZERO);
    }

    #[test]
    fn config_hash_ignores_threads_but_not_faults() {
        let job = tiny_job(Game::CandyCrush);
        let mut threaded = job;
        threaded.pipeline.threads = 4;
        assert_eq!(
            job.config_hash(),
            threaded.config_hash(),
            "threads are metric-invariant and must not force re-runs"
        );
        let mut faulted = job;
        faulted.pipeline.fault.wall_stall_ms = 100;
        assert_ne!(job.config_hash(), faulted.config_hash());
        let mut tuned = job;
        tuned.pipeline.l1_miss_fill_cycles += 1;
        assert_ne!(job.config_hash(), tuned.config_hash());
        let other_game = tiny_job(Game::TempleRun);
        assert_ne!(job.config_hash(), other_game.config_hash());
    }

    #[test]
    fn pre_v2_journal_lines_remain_skippable() {
        let journal = concat!(
            "{\"key\":\"a\",\"status\":\"ok\"}\n",
            "{\"key\":\"b\",\"status\":\"ok\",\"config_hash\":\"00000000deadbeef\"}\n",
        );
        let entries = completed_entries(journal);
        assert_eq!(entries["a"], None, "pre-v2 line: no hash recorded");
        assert_eq!(entries["b"], Some(0xdead_beef));
    }

    #[test]
    fn resume_refuses_to_skip_jobs_whose_config_changed() {
        let dir = std::env::temp_dir().join(format!("dtexl_sweep_hash_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let journal = dir.join("journal.jsonl");
        let _ = std::fs::remove_file(&journal);

        let jobs = vec![tiny_job(Game::CandyCrush), tiny_job(Game::TempleRun)];
        let opts = SweepOptions {
            journal: Some(journal.clone()),
            ..SweepOptions::default()
        };
        run_sweep(&jobs, &opts, |_, _| {}).unwrap();

        // Same keys, different pipeline: the keys alone would skip, the
        // hashes must not.
        let mut changed = jobs.clone();
        for j in &mut changed {
            j.pipeline.l1_miss_fill_cycles += 5;
            assert_eq!(j.key(), tiny_job(j.game).key());
        }
        let opts = SweepOptions {
            resume: true,
            ..opts
        };
        let ran = AtomicUsize::new(0);
        let report = run_sweep(&changed, &opts, |_, _| {
            ran.fetch_add(1, Ordering::Relaxed);
        })
        .unwrap();
        assert_eq!(
            ran.load(Ordering::Relaxed),
            2,
            "a changed config hash invalidates the journal entry"
        );
        assert!(report.records.iter().all(|r| r.status == JobStatus::Ok));

        // A third run with the changed configs now skips: the journal's
        // last-wins entries carry the new hash.
        let ran = AtomicUsize::new(0);
        run_sweep(&changed, &opts, |_, _| {
            ran.fetch_add(1, Ordering::Relaxed);
        })
        .unwrap();
        assert_eq!(ran.load(Ordering::Relaxed), 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn retries_sleep_through_the_injected_sleeper() {
        static SLEEPS: AtomicUsize = AtomicUsize::new(0);
        static TOTAL_NS: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        fn recording_sleeper(d: Duration) {
            SLEEPS.fetch_add(1, Ordering::Relaxed);
            TOTAL_NS.fetch_add(d.as_nanos() as u64, Ordering::Relaxed);
        }
        let mut wedged = tiny_job(Game::CandyCrush);
        wedged.pipeline.fault.wall_stall_ms = 60_000;
        let opts = SweepOptions {
            keep_going: true,
            job_timeout: Some(Duration::from_millis(20)),
            retry: RetryPolicy {
                max_retries: 2,
                backoff: Duration::from_millis(4),
            },
            sleeper: recording_sleeper,
            ..SweepOptions::default()
        };
        let report = run_sweep(&[wedged], &opts, |_, _| {}).unwrap();
        assert_eq!(report.records[0].attempts, 3);
        assert_eq!(
            SLEEPS.load(Ordering::Relaxed),
            2,
            "one backoff per retry, through the injected sleeper"
        );
        // The recorded schedule matches the pure policy exactly.
        let salt = fnv1a(wedged.key().as_bytes());
        let expected = opts.retry.delay(1, salt) + opts.retry.delay(2, salt);
        assert_eq!(TOTAL_NS.load(Ordering::Relaxed), expected.as_nanos() as u64);
    }

    #[test]
    fn poisoned_journal_entries_are_quarantined_on_resume() {
        let dir = std::env::temp_dir().join(format!("dtexl_sweep_poison_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let journal = dir.join("journal.jsonl");
        let _ = std::fs::remove_file(&journal);

        let jobs = vec![tiny_job(Game::CandyCrush), tiny_job(Game::TempleRun)];
        // Simulate the fleet supervisor: journal the first job as
        // poisoned before any sweep runs.
        let poisoned = JobRecord {
            index: 0,
            key: jobs[0].key(),
            status: JobStatus::Failed,
            attempts: 2,
            elapsed: Duration::ZERO,
            error: Some(JobError::Poisoned { deaths: 2 }),
            metrics: None,
            config_hash: jobs[0].config_hash(),
            peak_alloc: None,
            shard: None,
            obs: None,
        };
        std::fs::write(&journal, format!("{}\n", journal_line(&poisoned))).unwrap();

        let opts = SweepOptions {
            journal: Some(journal.clone()),
            resume: true,
            // Deliberately NOT keep_going: a historical quarantine
            // must not trip the first-failure abort, or a restarted
            // shard would never get past its poison job.
            keep_going: false,
            ..SweepOptions::default()
        };
        let ran = AtomicUsize::new(0);
        let report = run_sweep(&jobs, &opts, |_, _| {
            ran.fetch_add(1, Ordering::Relaxed);
        })
        .unwrap();
        assert!(!report.aborted, "quarantine must not abort the sweep");
        assert_eq!(ran.load(Ordering::Relaxed), 1, "only the healthy job ran");
        let quarantined = &report.records[0];
        assert_eq!(quarantined.status, JobStatus::Failed);
        assert_eq!(quarantined.attempts, 2, "blame count from the journal");
        assert_eq!(
            quarantined.error,
            Some(JobError::Poisoned { deaths: 2 }),
            "typed quarantine error"
        );
        assert!(!JobError::Poisoned { deaths: 2 }.retryable());
        assert_eq!(report.records[1].status, JobStatus::Ok);
        // The quarantine record is not re-journaled: the supervisor's
        // line stays the key's single (latest) entry.
        let text = std::fs::read_to_string(&journal).unwrap();
        assert_eq!(
            text.lines()
                .filter(|l| l.contains("\"error_kind\":\"poisoned\""))
                .count(),
            1
        );
        // A config drift lifts the quarantine: mutate the job so its
        // hash no longer matches the journaled one and it re-runs.
        let mut drifted = jobs.clone();
        drifted[0].pipeline.fault.alloc_spike_mb = 1;
        let report = run_sweep(&drifted, &opts, |_, _| {}).unwrap();
        assert_eq!(
            report.records[0].status,
            JobStatus::Ok,
            "hash mismatch re-runs the quarantined key"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn progress_json_is_one_stable_line() {
        let p = Progress {
            kind: ProgressKind::Heartbeat,
            key: "CCS|x|base|96x64#0".into(),
            index: 3,
            attempt: 2,
            elapsed: Duration::from_millis(12),
            peak_alloc_bytes: 4096,
            shard: None,
            pid: 4242,
            seq: 17,
            status: None,
            top_stall: None,
            dram_requests: None,
        };
        assert_eq!(
            p.to_json(),
            "{\"event\":\"heartbeat\",\"key\":\"CCS|x|base|96x64#0\",\"index\":3,\
             \"attempt\":2,\"elapsed_ms\":12,\"peak_alloc_bytes\":4096,\
             \"pid\":4242,\"seq\":17}"
        );
        let done = Progress {
            kind: ProgressKind::Done,
            shard: Some(Shard::new(1, 4).unwrap()),
            status: Some(JobStatus::Ok),
            top_stall: Some("c-barrier".into()),
            dram_requests: Some(1234),
            ..p
        };
        assert!(done.to_json().ends_with(
            ",\"shard\":\"1/4\",\"pid\":4242,\"seq\":17,\"status\":\"ok\",\
             \"top_stall\":\"c-barrier\",\"dram_requests\":1234}"
        ));
        assert!(!done.to_json().contains('\n'));
    }

    #[test]
    fn progress_lines_round_trip_through_the_parser() {
        let p = Progress {
            kind: ProgressKind::Done,
            key: "CCS|dtexl|base|96x64#0".into(),
            index: 5,
            attempt: 2,
            elapsed: Duration::from_millis(34),
            peak_alloc_bytes: 8192,
            shard: Some(Shard::new(0, 2).unwrap()),
            pid: 77,
            seq: 9,
            status: Some(JobStatus::Failed),
            top_stall: Some("d-upstream".into()),
            dram_requests: Some(42),
        };
        let parsed = parse_progress_line(&p.to_json()).expect("round trip");
        assert_eq!(parsed.event, "done");
        assert_eq!(parsed.key, p.key);
        assert_eq!(parsed.index, 5);
        assert_eq!(parsed.attempt, 2);
        assert_eq!(parsed.elapsed_ms, 34);
        assert_eq!(parsed.peak_alloc_bytes, 8192);
        assert_eq!(parsed.shard, Some(Shard::new(0, 2).unwrap()));
        assert_eq!(parsed.pid, Some(77));
        assert_eq!(parsed.seq, Some(9));
        assert_eq!(parsed.status.as_deref(), Some("failed"));
        assert_eq!(parsed.top_stall.as_deref(), Some("d-upstream"));
        assert_eq!(parsed.dram_requests, Some(42));
        // Truncated / corrupt lines parse to None, like journal lines.
        assert_eq!(parse_progress_line(""), None);
        assert_eq!(parse_progress_line("{\"event\":\"done\",\"key\":\"x"), None);
        // Pre-fleet lines (no pid/seq/shard) still parse.
        let old = parse_progress_line(
            "{\"event\":\"start\",\"key\":\"k\",\"index\":0,\"attempt\":0,\
             \"elapsed_ms\":0,\"peak_alloc_bytes\":0}",
        )
        .expect("pre-fleet line parses");
        assert_eq!(old.pid, None);
        assert_eq!(old.seq, None);
        assert_eq!(old.shard, None);
    }

    /// One test owns the static collector: progress events are pinned
    /// for the whole job lifecycle — wedged job (attempt, heartbeats,
    /// retry, failed), healthy job (ok with a real peak), and a
    /// resume-skipped job.
    #[test]
    fn progress_stream_covers_the_job_lifecycle() {
        static EVENTS: std::sync::LazyLock<Mutex<Vec<Progress>>> =
            std::sync::LazyLock::new(|| Mutex::new(Vec::new()));
        fn capture(p: &Progress) {
            EVENTS.lock().push(p.clone());
        }
        let kinds = |key: &str| -> Vec<ProgressKind> {
            EVENTS
                .lock()
                .iter()
                .filter(|p| p.key == key)
                .map(|p| p.kind)
                .collect()
        };

        let mut wedged = tiny_job(Game::CandyCrush);
        wedged.pipeline.fault.wall_stall_ms = 60_000;
        let healthy = tiny_job(Game::TempleRun);
        let opts = SweepOptions {
            workers: 1,
            keep_going: true,
            job_timeout: Some(Duration::from_millis(60)),
            retry: RetryPolicy {
                max_retries: 1,
                backoff: Duration::from_millis(1),
            },
            progress: Some(capture),
            progress_heartbeat: Duration::from_millis(5),
            ..SweepOptions::default()
        };
        let report = run_sweep(&[wedged, healthy], &opts, |_, _| {}).unwrap();
        assert_eq!(report.records[0].status, JobStatus::Failed);
        assert_eq!(report.records[1].status, JobStatus::Ok);

        let w = kinds(&wedged.key());
        assert_eq!(w.first(), Some(&ProgressKind::Start));
        assert_eq!(w.last(), Some(&ProgressKind::Done));
        assert_eq!(
            w.iter().filter(|k| **k == ProgressKind::Attempt).count(),
            2,
            "timeout is retryable: two attempts announced"
        );
        assert_eq!(w.iter().filter(|k| **k == ProgressKind::Retry).count(), 1);
        assert!(
            w.contains(&ProgressKind::Heartbeat),
            "a 60ms attempt with a 5ms heartbeat must beat at least once"
        );
        let w_done = EVENTS
            .lock()
            .iter()
            .find(|p| p.key == wedged.key() && p.kind == ProgressKind::Done)
            .cloned()
            .unwrap();
        assert_eq!(w_done.status, Some(JobStatus::Failed));
        assert_eq!(w_done.attempt, 2);

        let h = kinds(&healthy.key());
        assert_eq!(h.first(), Some(&ProgressKind::Start));
        assert_eq!(h.last(), Some(&ProgressKind::Done));
        assert!(!h.contains(&ProgressKind::Retry));
        let h_done = EVENTS
            .lock()
            .iter()
            .find(|p| p.key == healthy.key() && p.kind == ProgressKind::Done)
            .cloned()
            .unwrap();
        assert_eq!(h_done.status, Some(JobStatus::Ok));
        assert!(
            h_done.peak_alloc_bytes > 0,
            "done events carry the allocator high-water mark"
        );

        // Fleet-correlation fields: every event stamps this process's
        // pid, and the run's sequence numbers are gap-free from 0.
        {
            let events = EVENTS.lock();
            assert!(events.iter().all(|p| p.pid == std::process::id()));
            assert!(events.iter().all(|p| p.shard.is_none()), "unsharded run");
            let mut seqs: Vec<u64> = events.iter().map(|p| p.seq).collect();
            seqs.sort_unstable();
            let expected: Vec<u64> = (0..events.len() as u64).collect();
            assert_eq!(seqs, expected, "seq is gap-free across the run");
        }

        // Resume-skipped jobs still announce themselves: start, then
        // done(skipped), with no attempts in between.
        let dir = std::env::temp_dir().join(format!("dtexl-progress-{}", std::process::id()));
        let journal = dir.join("sweep.jsonl");
        let journal_opts = SweepOptions {
            journal: Some(journal.clone()),
            resume: true,
            ..SweepOptions::default()
        };
        run_sweep(&[healthy], &journal_opts, |_, _| {}).unwrap();
        EVENTS.lock().clear();
        let resumed = SweepOptions {
            progress: Some(capture),
            ..journal_opts
        };
        let report = run_sweep(&[healthy], &resumed, |_, _| {}).unwrap();
        assert_eq!(report.records[0].status, JobStatus::Skipped);
        assert_eq!(
            kinds(&healthy.key()),
            vec![ProgressKind::Start, ProgressKind::Done]
        );
        let skip_done = EVENTS.lock().last().cloned().unwrap();
        assert_eq!(skip_done.status, Some(JobStatus::Skipped));
        assert_eq!(skip_done.attempt, 0);
        std::fs::remove_dir_all(&dir).ok();
    }
}
