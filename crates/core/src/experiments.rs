//! Reproduction of every figure and table in the paper's evaluation
//! (§V), driven by a shared, cached simulation [`Lab`].

use crate::metrics::{Distribution, Table};
use crate::sim::CLOCK_HZ;
use crate::sweep::{run_sweep, JobError, SweepJob, SweepOptions, SweepReport};
use dtexl_mem::energy::EnergyModel;
use dtexl_pipeline::{BarrierMode, FrameResult, PipelineConfig};
use dtexl_scene::{Game, SceneSpec};
use dtexl_sched::{AssignMode, NamedMapping, QuadGrouping, ScheduleConfig, TileOrder};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
// lint: allow(determinism-hash) -- keyed lookup cache and dedup sets only; iteration order is never observed
use std::collections::HashMap;
use std::sync::Arc;

/// Experiment setup: resolution, frame and benchmark set.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Setup {
    /// Screen width in pixels.
    pub width: u32,
    /// Screen height in pixels.
    pub height: u32,
    /// Animation frame index.
    pub frame: u32,
    /// Benchmarks to evaluate.
    pub games: Vec<Game>,
    /// Worker threads for the simulation fan-out.
    pub threads: usize,
}

impl Setup {
    /// The paper's setup: 1960×768 (Table II) over all ten games.
    #[must_use]
    pub fn table2() -> Self {
        Self {
            width: 1960,
            height: 768,
            frame: 0,
            games: Game::ALL.to_vec(),
            // lint: allow(determinism-env) -- worker count is metric-invariant (pinned by tests/parallel_equivalence.rs)
            threads: std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(4),
        }
    }

    /// A reduced setup for tests and smoke runs (quarter resolution,
    /// three representative games).
    #[must_use]
    pub fn quick() -> Self {
        Self {
            width: 480,
            height: 192,
            games: vec![Game::CandyCrush, Game::TempleRun, Game::GravityTetris],
            ..Self::table2()
        }
    }
}

type Key = (Game, String, bool);
type Job = (Game, ScheduleConfig, bool);

/// A cached simulation laboratory: runs each `(game, schedule,
/// upper-bound)` combination at most once and shares the
/// [`FrameResult`] across all figures.
///
/// # Examples
///
/// ```
/// use dtexl::experiments::{Lab, Setup};
/// let mut setup = Setup::quick();
/// setup.width = 192; setup.height = 96; // tiny smoke test
/// setup.games.truncate(1);
/// let lab = Lab::new(setup);
/// let fig2 = lab.fig2();
/// assert_eq!(fig2.rows.len(), 2, "one game + mean");
/// ```
#[derive(Debug)]
pub struct Lab {
    setup: Setup,
    pipeline: PipelineConfig,
    // lint: allow(determinism-hash) -- keyed lookups only; results are read back per job key, never iterated
    cache: Mutex<HashMap<Key, Arc<FrameResult>>>,
}

impl Lab {
    /// Create a lab with the default (Table II) pipeline.
    #[must_use]
    pub fn new(setup: Setup) -> Self {
        Self::with_pipeline(setup, PipelineConfig::default())
    }

    /// Create a lab whose jobs run on a custom base pipeline (e.g. one
    /// carrying a [`dtexl_pipeline::FaultPlan`]); `upper_bound` is
    /// still overridden per job.
    #[must_use]
    pub fn with_pipeline(setup: Setup, pipeline: PipelineConfig) -> Self {
        Self {
            setup,
            pipeline,
            // lint: allow(determinism-hash) -- keyed lookups only; never iterated
            cache: Mutex::new(HashMap::new()),
        }
    }

    /// The lab's setup.
    #[must_use]
    pub fn setup(&self) -> &Setup {
        &self.setup
    }

    fn key(game: Game, sched: &ScheduleConfig, upper: bool) -> Key {
        (game, sched.label(), upper)
    }

    /// Compute (or fetch) the frame result for one configuration.
    ///
    /// # Panics
    ///
    /// Panics when the job fails; see [`try_result`](Self::try_result)
    /// for the fallible variant.
    pub fn result(&self, game: Game, sched: ScheduleConfig, upper: bool) -> Arc<FrameResult> {
        self.ensure(&[(game, sched, upper)]);
        self.cache
            .lock()
            .get(&Self::key(game, &sched, upper))
            // lint: allow(no-panic) -- ensure() either populated this key or already panicked with the job report
            .expect("just ensured")
            .clone()
    }

    /// Fallible variant of [`result`](Self::result).
    ///
    /// # Errors
    ///
    /// Returns the job's [`JobError`] when the simulation is rejected,
    /// panics, or times out under `opts`.
    pub fn try_result(
        &self,
        game: Game,
        sched: ScheduleConfig,
        upper: bool,
        opts: &SweepOptions,
    ) -> Result<Arc<FrameResult>, JobError> {
        let report = self
            .try_ensure(&[(game, sched, upper)], opts)
            .map_err(|e| JobError::Panicked(format!("journal I/O failed: {e}")))?;
        if let Some(r) = report.failed().first() {
            return Err(r.error.clone().unwrap_or(JobError::Panicked(
                "job failed without a recorded error".into(),
            )));
        }
        Ok(self
            .cache
            .lock()
            .get(&Self::key(game, &sched, upper))
            // lint: allow(no-panic) -- try_ensure returned success for this key on the line above
            .expect("just ensured")
            .clone())
    }

    /// Ensure all `jobs` are simulated, fanning out over worker
    /// threads.
    ///
    /// # Panics
    ///
    /// Panics with the sweep's failure summary if any job fails (the
    /// remaining jobs still complete first); use
    /// [`try_ensure`](Self::try_ensure) to get a [`SweepReport`]
    /// instead.
    pub fn ensure(&self, jobs: &[Job]) {
        let opts = SweepOptions {
            workers: self.setup.threads,
            keep_going: true,
            ..SweepOptions::default()
        };
        let report = self
            .try_ensure(jobs, &opts)
            // lint: allow(no-panic) -- no journal is configured, so the only I/O error source is absent
            .expect("no journal configured, I/O cannot fail");
        assert!(report.is_success(), "{}", report.summary());
    }

    /// Ensure all `jobs` are simulated under the fault-tolerant sweep
    /// engine: panicking, invalid or wedged jobs are isolated and
    /// reported instead of taking the process down (see
    /// [`crate::sweep::run_sweep`]).
    ///
    /// Successful results land in the lab's cache; failed jobs are
    /// described in the returned [`SweepReport`].
    ///
    /// # Errors
    ///
    /// Returns an I/O error only for journal-file problems when
    /// `opts.journal` is set.
    pub fn try_ensure(&self, jobs: &[Job], opts: &SweepOptions) -> std::io::Result<SweepReport> {
        let missing: Vec<Job> = {
            let cache = self.cache.lock();
            // lint: allow(determinism-hash) -- membership-only dedup; job order comes from the input slice
            let mut seen = std::collections::HashSet::new();
            jobs.iter()
                .filter(|(g, s, u)| {
                    let k = Self::key(*g, s, *u);
                    !cache.contains_key(&k) && seen.insert(k)
                })
                .copied()
                .collect()
        };
        if missing.is_empty() {
            return Ok(SweepReport {
                records: Vec::new(),
                aborted: false,
            });
        }
        let sweep_jobs: Vec<SweepJob> = missing
            .iter()
            .map(|&(game, sched, upper)| SweepJob {
                game,
                schedule: sched,
                width: self.setup.width,
                height: self.setup.height,
                frame: self.setup.frame,
                pipeline: PipelineConfig {
                    upper_bound: upper,
                    ..self.pipeline
                },
            })
            .collect();
        let mut opts = opts.clone();
        if opts.workers == 0 {
            opts.workers = self.setup.threads;
        }
        // Sharding is a fleet-level concern: the lab needs every job's
        // result in its cache, so a shard filter (which silently drops
        // out-of-shard jobs) would break the `try_result` invariant
        // that ensured keys are present.
        opts.shard = None;
        run_sweep(&sweep_jobs, &opts, |job, result| {
            self.cache.lock().insert(
                Self::key(job.game, &job.schedule, job.pipeline.upper_bound),
                Arc::new(result),
            );
        })
    }

    // ---- schedule shorthands -------------------------------------------------

    fn baseline_sched() -> ScheduleConfig {
        ScheduleConfig::baseline()
    }

    fn grouping_sched(g: QuadGrouping) -> ScheduleConfig {
        ScheduleConfig {
            grouping: g,
            order: TileOrder::ZOrder,
            assignment: AssignMode::Const,
        }
    }

    // ---- figures -------------------------------------------------------------

    /// Fig. 1: per-tile quad-count deviation (%) of the load-balancing
    /// scheduler (FG-xshift2) vs the texture-locality scheduler
    /// (CG-square).
    #[must_use]
    pub fn fig1(&self) -> Table {
        self.two_sched_table(
            "fig1",
            "Mean deviation of threads per SC per tile (%)",
            |r| r.mean_quad_deviation(),
        )
    }

    /// Fig. 2: L2 accesses of the texture-locality scheduler normalized
    /// to the load-balancing scheduler.
    #[must_use]
    pub fn fig2(&self) -> Table {
        let jobs = self.per_game_jobs(&[
            Self::baseline_sched(),
            Self::grouping_sched(QuadGrouping::CgSquare),
        ]);
        self.ensure(&jobs);
        let mut t = Table::new(
            "fig2",
            "L2 accesses of CG-square normalized to FG-xshift2",
            vec!["CG-square/FG-xshift2".into()],
        );
        for &game in &self.setup.games {
            let base = self.result(game, Self::baseline_sched(), false);
            let cg = self.result(game, Self::grouping_sched(QuadGrouping::CgSquare), false);
            t.push_row(
                game.alias(),
                vec![cg.total_l2_accesses() as f64 / base.total_l2_accesses() as f64],
            );
        }
        t.push_mean_row();
        t
    }

    /// Fig. 11: average L2 accesses of each quad grouping, normalized
    /// to FG-xshift2.
    #[must_use]
    pub fn fig11(&self) -> Table {
        self.grouping_sweep("fig11", "Avg L2 accesses normalized to FG-xshift2", |r| {
            r.total_l2_accesses() as f64
        })
    }

    /// Fig. 12: average normalized mean deviation of quad distribution
    /// per grouping, normalized to FG-xshift2.
    #[must_use]
    pub fn fig12(&self) -> Table {
        self.grouping_sweep(
            "fig12",
            "Avg quad-distribution deviation normalized to FG-xshift2",
            FrameResult::mean_quad_deviation,
        )
    }

    /// Fig. 13: speedup of CG-square and CG-yrect over FG-xshift2, all
    /// with coupled barriers (no decoupling yet).
    #[must_use]
    pub fn fig13(&self) -> Table {
        let cg_sq = Self::grouping_sched(QuadGrouping::CgSquare);
        let cg_y = Self::grouping_sched(QuadGrouping::CgYRect);
        let jobs = self.per_game_jobs(&[Self::baseline_sched(), cg_sq, cg_y]);
        self.ensure(&jobs);
        let mut t = Table::new(
            "fig13",
            "Speedup over FG-xshift2 (coupled barriers)",
            vec!["CG-square".into(), "CG-yrect".into()],
        );
        for &game in &self.setup.games {
            let base = self
                .result(game, Self::baseline_sched(), false)
                .total_cycles(BarrierMode::Coupled) as f64;
            let sq = self
                .result(game, cg_sq, false)
                .total_cycles(BarrierMode::Coupled) as f64;
            let y = self
                .result(game, cg_y, false)
                .total_cycles(BarrierMode::Coupled) as f64;
            t.push_row(game.alias(), vec![base / sq, base / y]);
        }
        t.push_mean_row();
        t
    }

    /// Fig. 14: distribution of per-tile SC *execution-time* imbalance
    /// (%), FG-xshift2 vs CG-square (violin summary: min/p25/mean/p75/
    /// max).
    #[must_use]
    pub fn fig14(&self) -> Table {
        self.violin_table("fig14", "SC execution-time imbalance per tile (%)", |r| {
            r.time_deviation_samples()
        })
    }

    /// Fig. 15: distribution of per-tile SC *quad-count* imbalance (%).
    #[must_use]
    pub fn fig15(&self) -> Table {
        self.violin_table(
            "fig15",
            "SC quad-distribution imbalance per tile (%)",
            |r| r.quad_deviation_samples(),
        )
    }

    /// Fig. 16: decrease in L2 accesses (%) vs the baseline for the
    /// eight subtile mappings of Fig. 8 plus the aggregated-cache upper
    /// bound.
    #[must_use]
    pub fn fig16(&self) -> Table {
        let mut jobs = self.per_game_jobs(&[Self::baseline_sched()]);
        for m in NamedMapping::FIG16 {
            jobs.extend(self.per_game_jobs(&[m.config()]));
        }
        for &game in &self.setup.games {
            jobs.push((game, Self::baseline_sched(), true));
        }
        self.ensure(&jobs);

        let mut columns: Vec<String> = NamedMapping::FIG16
            .iter()
            .map(|m| m.name().into())
            .collect();
        columns.push("UpperBound".into());
        let mut t = Table::new("fig16", "Decrease in L2 accesses vs baseline (%)", columns);
        for &game in &self.setup.games {
            let base = self
                .result(game, Self::baseline_sched(), false)
                .total_l2_accesses() as f64;
            let mut vals: Vec<f64> = NamedMapping::FIG16
                .iter()
                .map(|m| {
                    let l2 = self.result(game, m.config(), false).total_l2_accesses() as f64;
                    100.0 * (1.0 - l2 / base)
                })
                .collect();
            let ub = self
                .result(game, Self::baseline_sched(), true)
                .total_l2_accesses() as f64;
            vals.push(100.0 * (1.0 - ub / base));
            t.push_row(game.alias(), vals);
        }
        t.push_mean_row();
        t
    }

    /// Fig. 17: speedup over the non-decoupled baseline for (a)
    /// FG-xshift2 with decoupled barriers and (b) DTexL (HLB-flp2,
    /// decoupled).
    #[must_use]
    pub fn fig17(&self) -> Table {
        let dtexl = ScheduleConfig::dtexl();
        let jobs = self.per_game_jobs(&[Self::baseline_sched(), dtexl]);
        self.ensure(&jobs);
        let mut t = Table::new(
            "fig17",
            "Speedup over non-decoupled FG-xshift2",
            vec!["FG-xshift2+dec".into(), "DTexL(HLB-flp2)".into()],
        );
        for &game in &self.setup.games {
            let base = self.result(game, Self::baseline_sched(), false);
            let coupled = base.total_cycles(BarrierMode::Coupled) as f64;
            let fg_dec = base.total_cycles(BarrierMode::Decoupled) as f64;
            let dt = self
                .result(game, dtexl, false)
                .total_cycles(BarrierMode::Decoupled) as f64;
            t.push_row(game.alias(), vec![coupled / fg_dec, coupled / dt]);
        }
        t.push_mean_row();
        t
    }

    /// Fig. 18: decrease in total GPU energy (%) vs the non-decoupled
    /// baseline for the same two configurations as Fig. 17.
    #[must_use]
    pub fn fig18(&self) -> Table {
        let dtexl = ScheduleConfig::dtexl();
        let jobs = self.per_game_jobs(&[Self::baseline_sched(), dtexl]);
        self.ensure(&jobs);
        let model = EnergyModel::default();
        let energy =
            |r: &FrameResult, mode: BarrierMode| model.evaluate(&r.energy_events(mode)).total_pj();
        let mut t = Table::new(
            "fig18",
            "Decrease in total GPU energy vs non-decoupled FG-xshift2 (%)",
            vec!["FG-xshift2+dec".into(), "DTexL(HLB-flp2)".into()],
        );
        for &game in &self.setup.games {
            let base = self.result(game, Self::baseline_sched(), false);
            let e_base = energy(&base, BarrierMode::Coupled);
            let e_fg = energy(&base, BarrierMode::Decoupled);
            let dt = self.result(game, dtexl, false);
            let e_dt = energy(&dt, BarrierMode::Decoupled);
            t.push_row(
                game.alias(),
                vec![100.0 * (1.0 - e_fg / e_base), 100.0 * (1.0 - e_dt / e_base)],
            );
        }
        t.push_mean_row();
        t
    }

    /// Table I: benchmark characteristics — metadata plus the measured
    /// footprint and scene size of the synthetic stand-ins.
    #[must_use]
    pub fn table1(&self) -> Table {
        let mut t = Table::new(
            "table1",
            "Benchmarks (paper metadata + synthetic measurements)",
            vec![
                "Installs(M)".into(),
                "3D".into(),
                "Paper MiB".into(),
                "Actual MiB".into(),
                "Draws".into(),
                "Triangles".into(),
            ],
        );
        let spec = SceneSpec::new(self.setup.width, self.setup.height, self.setup.frame);
        for &game in &self.setup.games {
            let info = game.info();
            let scene = game.scene(&spec);
            t.push_row(
                game.alias(),
                vec![
                    f64::from(info.installs_millions),
                    f64::from(u8::from(info.is_3d)),
                    info.texture_footprint_mib,
                    scene.texture_footprint_bytes() as f64 / (1024.0 * 1024.0),
                    scene.draws.len() as f64,
                    f64::from(scene.triangle_count()),
                ],
            );
        }
        t
    }

    /// Run every figure and table, sharing cached simulations.
    #[must_use]
    pub fn all_figures(&self) -> Vec<Table> {
        // Prefetch the full union of configurations in one parallel
        // sweep so individual figures only read the cache.
        let mut jobs = Vec::new();
        let mut schedules = vec![Self::baseline_sched(), ScheduleConfig::dtexl()];
        schedules.extend(QuadGrouping::ALL.iter().map(|&g| Self::grouping_sched(g)));
        schedules.extend(NamedMapping::FIG16.iter().map(|m| m.config()));
        for &game in &self.setup.games {
            for s in &schedules {
                jobs.push((game, *s, false));
            }
            jobs.push((game, Self::baseline_sched(), true));
        }
        self.ensure(&jobs);
        vec![
            self.table1(),
            self.replication_table(),
            self.fig1(),
            self.fig2(),
            self.fig11(),
            self.fig12(),
            self.fig13(),
            self.fig14(),
            self.fig15(),
            self.fig16(),
            self.fig17(),
            self.fig18(),
        ]
    }

    /// Beyond-paper diagnostic: measured texture-block fill redundancy
    /// (L1 fills per distinct line — spatial replication across the
    /// four private caches *times* temporal refetching across tiles)
    /// for the load-balancing baseline, DTexL's mapping, and the
    /// aggregated-cache upper bound. This quantifies the paper's
    /// central claim: the fine-grained baseline refetches each block
    /// ~3× more often than the locality mapping, which itself sits
    /// within ~1.6× of the no-replication upper bound.
    #[must_use]
    pub fn replication_table(&self) -> Table {
        let dtexl = ScheduleConfig::dtexl();
        let mut jobs = self.per_game_jobs(&[Self::baseline_sched(), dtexl]);
        for &game in &self.setup.games {
            jobs.push((game, Self::baseline_sched(), true));
        }
        self.ensure(&jobs);
        let mut t = Table::new(
            "replication",
            "Texture-block fill redundancy (L1 fills per distinct line)",
            vec![
                "FG-xshift2".into(),
                "DTexL(HLB-flp2)".into(),
                "UpperBound".into(),
            ],
        );
        for &game in &self.setup.games {
            let fg = self.result(game, Self::baseline_sched(), false);
            let dt = self.result(game, dtexl, false);
            let ub = self.result(game, Self::baseline_sched(), true);
            t.push_row(
                game.alias(),
                vec![
                    fg.hierarchy.fill_redundancy(),
                    dt.hierarchy.fill_redundancy(),
                    ub.hierarchy.fill_redundancy(),
                ],
            );
        }
        t.push_mean_row();
        t
    }

    /// Generic comparison of arbitrary named schedules: one row per
    /// game, columns `speedup` / `L2 decrease %` / `quad dev %` for each
    /// named configuration (all relative to the paper baseline, using
    /// `mode` for the candidates' frame time). The extension point for
    /// custom design-space exploration on top of the cached lab.
    #[must_use]
    pub fn compare(&self, candidates: &[(&str, ScheduleConfig)], mode: BarrierMode) -> Table {
        let mut jobs = self.per_game_jobs(&[Self::baseline_sched()]);
        for (_, s) in candidates {
            jobs.extend(self.per_game_jobs(&[*s]));
        }
        self.ensure(&jobs);
        let mut columns = Vec::new();
        for (name, _) in candidates {
            columns.push(format!("{name} speedup"));
            columns.push(format!("{name} L2dec%"));
        }
        let mut t = Table::new("compare", "Custom schedule comparison vs baseline", columns);
        for &game in &self.setup.games {
            let base = self.result(game, Self::baseline_sched(), false);
            let base_cycles = base.total_cycles(BarrierMode::Coupled) as f64;
            let base_l2 = base.total_l2_accesses() as f64;
            let mut vals = Vec::new();
            for (_, s) in candidates {
                let r = self.result(game, *s, false);
                vals.push(base_cycles / r.total_cycles(mode) as f64);
                vals.push(100.0 * (1.0 - r.total_l2_accesses() as f64 / base_l2));
            }
            t.push_row(game.alias(), vals);
        }
        t.push_mean_row();
        t
    }

    /// Average FPS of a configuration across the setup's games
    /// (convenience for examples and ablations).
    #[must_use]
    pub fn mean_fps(&self, sched: ScheduleConfig, mode: BarrierMode) -> f64 {
        let jobs = self.per_game_jobs(&[sched]);
        self.ensure(&jobs);
        let sum: f64 = self
            .setup
            .games
            .iter()
            .map(|&g| CLOCK_HZ / self.result(g, sched, false).total_cycles(mode) as f64)
            .sum();
        sum / self.setup.games.len() as f64
    }

    // ---- shared helpers ------------------------------------------------------

    fn per_game_jobs(&self, scheds: &[ScheduleConfig]) -> Vec<Job> {
        self.setup
            .games
            .iter()
            .flat_map(|&g| scheds.iter().map(move |&s| (g, s, false)))
            .collect()
    }

    fn two_sched_table(
        &self,
        id: &str,
        title: &str,
        metric: impl Fn(&FrameResult) -> f64,
    ) -> Table {
        let cg = Self::grouping_sched(QuadGrouping::CgSquare);
        let jobs = self.per_game_jobs(&[Self::baseline_sched(), cg]);
        self.ensure(&jobs);
        let mut t = Table::new(id, title, vec!["FG-xshift2".into(), "CG-square".into()]);
        for &game in &self.setup.games {
            let fg = metric(&self.result(game, Self::baseline_sched(), false));
            let c = metric(&self.result(game, cg, false));
            t.push_row(game.alias(), vec![fg, c]);
        }
        t.push_mean_row();
        t
    }

    fn grouping_sweep(&self, id: &str, title: &str, metric: impl Fn(&FrameResult) -> f64) -> Table {
        let scheds: Vec<ScheduleConfig> = QuadGrouping::ALL
            .iter()
            .map(|&g| Self::grouping_sched(g))
            .collect();
        self.ensure(&self.per_game_jobs(&scheds));
        let mut t = Table::new(id, title, vec!["norm. to FG-xshift2".into()]);
        for g in QuadGrouping::ALL {
            let sched = Self::grouping_sched(g);
            let mut acc = 0.0;
            for &game in &self.setup.games {
                let base = metric(&self.result(game, Self::baseline_sched(), false));
                let v = metric(&self.result(game, sched, false));
                acc += if base > 0.0 { v / base } else { 1.0 };
            }
            t.push_row(g.name(), vec![acc / self.setup.games.len() as f64]);
        }
        t
    }

    fn violin_table(
        &self,
        id: &str,
        title: &str,
        samples: impl Fn(&FrameResult) -> Vec<f64>,
    ) -> Table {
        let cg = Self::grouping_sched(QuadGrouping::CgSquare);
        self.ensure(&self.per_game_jobs(&[Self::baseline_sched(), cg]));
        let mut t = Table::new(
            id,
            title,
            vec![
                "FG-min".into(),
                "FG-p25".into(),
                "FG-mean".into(),
                "FG-p75".into(),
                "FG-max".into(),
                "CG-min".into(),
                "CG-p25".into(),
                "CG-mean".into(),
                "CG-p75".into(),
                "CG-max".into(),
            ],
        );
        for &game in &self.setup.games {
            let fg = Distribution::from_samples(&samples(&self.result(
                game,
                Self::baseline_sched(),
                false,
            )));
            let c = Distribution::from_samples(&samples(&self.result(game, cg, false)));
            t.push_row(
                game.alias(),
                vec![
                    fg.min, fg.p25, fg.mean, fg.p75, fg.max, c.min, c.p25, c.mean, c.p75, c.max,
                ],
            );
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Small but not degenerate: 16×8 tiles, enough for the Hilbert
    /// 8×8 sub-frames and the decoupling dynamics to operate.
    fn tiny_lab() -> Lab {
        Lab::new(Setup {
            width: 512,
            height: 256,
            frame: 0,
            games: vec![Game::GravityTetris, Game::CandyCrush],
            threads: 4,
        })
    }

    #[test]
    fn fig2_shows_l2_reduction() {
        let lab = tiny_lab();
        let t = lab.fig2();
        let mean = t.get("Mean", "CG-square/FG-xshift2").unwrap();
        assert!(mean < 1.0, "CG must reduce L2 accesses, got {mean}");
        assert!(mean > 0.1);
    }

    #[test]
    fn fig1_shows_balance_tradeoff() {
        let lab = tiny_lab();
        let t = lab.fig1();
        let fg = t.get("Mean", "FG-xshift2").unwrap();
        let cg = t.get("Mean", "CG-square").unwrap();
        assert!(fg < cg, "FG balances better: {fg} vs {cg}");
    }

    #[test]
    fn fig17_dtexl_speeds_up() {
        let lab = tiny_lab();
        let t = lab.fig17();
        let dtexl = t.get("Mean", "DTexL(HLB-flp2)").unwrap();
        assert!(dtexl > 1.0, "DTexL must speed up, got {dtexl}");
        let fg = t.get("Mean", "FG-xshift2+dec").unwrap();
        assert!(fg >= 1.0, "decoupling never slows the baseline, got {fg}");
    }

    #[test]
    fn cache_hits_avoid_recompute() {
        let lab = tiny_lab();
        let a = lab.result(Game::GravityTetris, ScheduleConfig::baseline(), false);
        let b = lab.result(Game::GravityTetris, ScheduleConfig::baseline(), false);
        assert!(Arc::ptr_eq(&a, &b), "second call must be cached");
    }

    #[test]
    fn replication_ordering_matches_the_paper_claim() {
        let lab = tiny_lab();
        let t = lab.replication_table();
        let fg = t.get("Mean", "FG-xshift2").unwrap();
        let dt = t.get("Mean", "DTexL(HLB-flp2)").unwrap();
        let ub = t.get("Mean", "UpperBound").unwrap();
        assert!(
            fg > dt && dt > ub,
            "replication must fall FG({fg:.2}) > DTexL({dt:.2}) > UB({ub:.2})"
        );
        assert!(
            fg > 2.0,
            "fine-grained replication should approach the SC count"
        );
        assert!(ub >= 1.0, "every line is fetched at least once");
    }

    #[test]
    fn compare_builds_columns_per_candidate() {
        use dtexl_sched::TileOrder;
        let lab = tiny_lab();
        let spiral = ScheduleConfig {
            order: TileOrder::Spiral,
            ..ScheduleConfig::dtexl()
        };
        let t = lab.compare(
            &[("dtexl", ScheduleConfig::dtexl()), ("spiral", spiral)],
            BarrierMode::Decoupled,
        );
        assert_eq!(t.columns.len(), 4);
        let dtexl_speed = t.get("Mean", "dtexl speedup").unwrap();
        let spiral_speed = t.get("Mean", "spiral speedup").unwrap();
        assert!(dtexl_speed > 1.0);
        assert!(spiral_speed > 1.0, "spiral order also decouples fine");
        assert!(t.get("Mean", "dtexl L2dec%").unwrap() > 20.0);
    }

    #[test]
    fn table1_has_metadata_and_measurements() {
        let lab = tiny_lab();
        let t = lab.table1();
        assert_eq!(t.rows.len(), 2);
        let paper = t.get("GTr", "Paper MiB").unwrap();
        let actual = t.get("GTr", "Actual MiB").unwrap();
        assert_eq!(paper, 0.7);
        assert!(actual > 0.3 && actual < 1.5);
    }
}
