//! # DTexL — Decoupled Raster Pipeline for Texture Locality
//!
//! A full reproduction of *DTexL: Decoupled Raster Pipeline for Texture
//! Locality* (MICRO 2022) as a Rust library. DTexL improves mobile-GPU
//! performance and energy by scheduling raster quads for **texture
//! locality** instead of pure load balance, and recovers the resulting
//! load imbalance with a **decoupled-barrier** raster pipeline.
//!
//! The workspace layers:
//!
//! * [`dtexl_sched`] — quad groupings (Fig. 6), tile orders (Fig. 7)
//!   and subtile assignments (Fig. 8);
//! * [`dtexl_scene`] — synthetic stand-ins for the ten commercial games
//!   of Table I;
//! * [`dtexl_pipeline`] — the cycle-level TBR pipeline (TEAPOT
//!   stand-in) with coupled/decoupled barrier composition;
//! * [`dtexl_mem`] — caches, DRAM and the energy model;
//! * this crate — a one-call simulator facade ([`Simulator`]) and the
//!   experiment harness ([`experiments::Lab`]) that regenerates every
//!   figure and table of the paper's evaluation.
//!
//! # Quickstart
//!
//! ```
//! use dtexl::{SimConfig, Simulator};
//! use dtexl_scene::Game;
//!
//! // Simulate one small frame of the GTr workload under both the
//! // baseline scheduler and DTexL.
//! let base = Simulator::simulate(&SimConfig::baseline(Game::GravityTetris).with_resolution(256, 128));
//! let dtexl = Simulator::simulate(&SimConfig::dtexl(Game::GravityTetris).with_resolution(256, 128));
//! assert!(dtexl.l2_accesses < base.l2_accesses, "DTexL cuts L2 traffic");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod metrics;
mod sim;
mod tail;

pub mod characterize;
pub mod daemon;
pub mod dispatch;
pub mod experiments;
pub mod profile;
pub mod registry;
pub mod report;
pub mod spool;
pub mod sweep;

pub use metrics::{percentile, Distribution, Row, Table};
pub use sim::{SequenceReport, SimConfig, SimReport, Simulator, CLOCK_HZ};

// Re-export the member crates so `dtexl` is a one-stop dependency.
pub use dtexl_alloc as alloc;
pub use dtexl_gmath as gmath;
pub use dtexl_mem as mem;
pub use dtexl_obs as obs;
pub use dtexl_pipeline as pipeline;
pub use dtexl_scene as scene;
pub use dtexl_sched as sched;
pub use dtexl_texture as texture;
