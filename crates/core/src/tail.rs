//! Offset-tracking line tailer for append-only JSONL files.
//!
//! Both supervisor planes read files that a live child is appending
//! to: the fleet supervisor tails `--progress-to` streams, and the
//! daemon's live merger tails shard journals. The failure modes are
//! identical — the file may not exist yet, the last line may be
//! half-written, a read may land mid-UTF-8 — so both share this
//! reader: consume newly appended bytes from a remembered offset,
//! yield only *complete* lines, and carry the unterminated tail until
//! its remainder arrives.

use std::io::{Read as _, Seek as _, SeekFrom};
use std::path::PathBuf;

/// Tail state for one append-only file: the byte offset already
/// consumed and the trailing partial line carried between drains.
#[derive(Debug)]
pub(crate) struct TailReader {
    path: PathBuf,
    offset: u64,
    carry: String,
}

impl TailReader {
    /// Tail `path` from byte 0 (the file need not exist yet).
    pub(crate) fn new(path: PathBuf) -> Self {
        Self {
            path,
            offset: 0,
            carry: String::new(),
        }
    }

    /// Read newly appended bytes and invoke `sink` once per complete
    /// line (newline stripped). Returns the number of complete lines
    /// yielded. Every failure mode — missing file, seek past a
    /// truncation, partial UTF-8 at EOF — yields zero lines now and
    /// retries on the next drain; a tailer must shrug, not fail.
    pub(crate) fn drain(&mut self, mut sink: impl FnMut(&str)) -> usize {
        let Ok(mut file) = std::fs::File::open(&self.path) else {
            return 0;
        };
        if file.seek(SeekFrom::Start(self.offset)).is_err() {
            return 0;
        }
        let mut buf = String::new();
        let Ok(read) = file.read_to_string(&mut buf) else {
            return 0;
        };
        if read == 0 {
            return 0;
        }
        self.offset += read as u64;
        self.carry.push_str(&buf);
        let mut lines = 0;
        while let Some(nl) = self.carry.find('\n') {
            let line: String = self.carry.drain(..=nl).collect();
            sink(line.trim_end_matches('\n'));
            lines += 1;
        }
        lines
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write as _;

    #[test]
    fn drains_only_complete_lines_and_carries_the_tail() {
        let dir = std::env::temp_dir().join(format!("dtexl_tail_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.jsonl");
        let mut tail = TailReader::new(path.clone());

        // File does not exist yet: zero lines, no error.
        assert_eq!(tail.drain(|_| panic!("no lines yet")), 0);

        let mut f = std::fs::File::create(&path).unwrap();
        write!(f, "one\ntwo\npart").unwrap();
        f.flush().unwrap();
        let mut seen = Vec::new();
        assert_eq!(tail.drain(|l| seen.push(l.to_string())), 2);
        assert_eq!(seen, ["one", "two"], "the partial tail is withheld");

        // The remainder of the partial line arrives.
        write!(f, "ial\nlast\n").unwrap();
        f.flush().unwrap();
        seen.clear();
        assert_eq!(tail.drain(|l| seen.push(l.to_string())), 2);
        assert_eq!(seen, ["partial", "last"]);

        // Nothing new appended: zero lines.
        assert_eq!(tail.drain(|_| panic!("no new lines")), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
