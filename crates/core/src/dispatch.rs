//! Fleet supervisor for multi-process sweeps (`dtexl sweep dispatch`).
//!
//! [`run_sweep`](crate::sweep::run_sweep) already isolates jobs on
//! disposable threads, but a panic that escapes isolation, an OOM
//! kill, or a wedged process still takes the whole run down with it.
//! This module moves the fault boundary to the *process*: a supervisor
//! spawns one child `dtexl sweep --shard i/N` per shard, tails each
//! child's `--progress-to` JSONL stream, and drives a per-shard state
//! machine:
//!
//! ```text
//!            ┌────────────────────── backoff elapsed ─────────────┐
//!            ▼                                                    │
//!        [pending] ──spawn──▶ [healthy] ──exit 0/2──▶ [completed] │
//!                                │ │ │                            │
//!              no events within  │ │ │ non-zero / signal exit     │
//!              --wedge-timeout ──┘ │ └─────────────▶ (crashed) ───┤
//!                │                 │ rss / cgroup limit           │
//!                ▼                 ▼                              │
//!             (wedged)        (oom-killed)                        │
//!                └────────────────┴──── blame in-flight jobs, ────┘
//!                                       restarts < --max-restarts?
//!                                       no → [gave up]
//! ```
//!
//! Every death blames the jobs that were in flight (progress stream
//! said `attempt`/`heartbeat` but not yet `done`). A job blamed for
//! [`DispatchOptions::poison_threshold`] deaths is **poisoned**: the
//! supervisor appends a typed `error_kind:"poisoned"` record to the
//! shard's journal and restarts the shard, whose `--resume` pass sees
//! the quarantine ([`JobError::Poisoned`]) and fails the job without
//! executing it. One pathological config therefore degrades to a
//! single failed record instead of a dead fleet.
//!
//! Children always restart `--resume`-ing their own journal, so a
//! restart re-runs only the jobs the dead incarnation had not
//! journaled. On fleet completion the supervisor merges the shard
//! journals through the same last-wins path as `dtexl sweep merge`
//! and reports coverage over the full job list.
//!
//! Hard memory enforcement happens at the process boundary: when a
//! per-shard limit is set, the supervisor places each child in a
//! dedicated cgroup-v2 with `memory.max` when the cgroup filesystem
//! is writable, and otherwise falls back to polling the child's RSS
//! from `/proc` and killing it on overrun. Either way the *kernel's*
//! accounting covers every thread of the child — including the lane
//! workers that an in-process `AllocMeter` can only see when the
//! pipeline hands the tag down.
//!
//! Wall-clock use (child polling, wedge timers, restart backoff) is
//! intrinsic to supervising real processes; the determinism lint
//! allows it here by a scoped built-in allowlist entry rather than by
//! widening the sim-crate rules (see `cargo xtask lint`).

use crate::sweep::{
    journal_line, latest_entries, merge_journals, parse_progress_line, JobError, JobRecord,
    JobStatus, JournalEntry, MergeStats, ProgressLine, Shard, SweepJob,
};
use crate::tail::TailReader;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

/// What to run: the child binary, the sweep arguments every shard
/// shares, and the supervisor's own copy of the job list (used to
/// stamp poison records with the right `config_hash` and to audit
/// coverage after the merge).
#[derive(Debug, Clone)]
pub struct FleetSpec {
    /// The `dtexl` binary to spawn.
    pub program: PathBuf,
    /// Sweep arguments forwarded to every child verbatim (games,
    /// schedules, resolution, budgets, …). The supervisor appends the
    /// per-shard `--shard i/N --journal … --resume --progress-to …`
    /// itself; the spec must not contain them.
    pub sweep_args: Vec<String>,
    /// The same job list the children will build from `sweep_args`.
    /// Keys and config hashes must match what the children compute,
    /// or poison records will not quarantine and coverage will
    /// misreport.
    pub jobs: Vec<SweepJob>,
    /// Number of shard processes (`N` in `--shard i/N`).
    pub shards: u32,
}

/// Supervision knobs for [`dispatch_fleet`].
#[derive(Debug, Clone)]
pub struct DispatchOptions {
    /// Declare a shard wedged — kill and restart it — when its
    /// progress stream produces no complete line for this long.
    pub wedge_timeout: Duration,
    /// Re-spawns allowed per shard after its first spawn; exceeding
    /// this marks the shard gave-up (fleet exit code 1).
    pub max_restarts: u32,
    /// Base restart delay; restart `n` waits `backoff × 2^(n-1)`,
    /// doubling capped at ×64.
    pub restart_backoff: Duration,
    /// Shard deaths blamed on one in-flight job before the supervisor
    /// quarantines it as poisoned (the issue's "dies twice" rule).
    pub poison_threshold: u32,
    /// Per-shard-process memory limit in bytes, enforced at the
    /// process boundary (cgroup-v2 `memory.max` when available, else
    /// supervisor-polled RSS). `None` = unlimited.
    pub mem_limit: Option<u64>,
    /// Supervisor poll interval (progress drain, liveness, wedge and
    /// RSS checks).
    pub poll: Duration,
    /// Directory for shard journals, progress streams and child logs.
    /// Created if missing. Reusing a workdir resumes its journals.
    pub workdir: PathBuf,
    /// Where to write the merged journal (default:
    /// `workdir/merged.jsonl`).
    pub merged_journal: Option<PathBuf>,
    /// Supervisor log sink, one line per call. A fn pointer (like
    /// `SweepOptions::sleeper`) so the options stay `Clone` + `Debug`;
    /// the CLI logs to stderr, tests capture into a static.
    pub log: fn(&str),
}

impl Default for DispatchOptions {
    fn default() -> Self {
        Self {
            wedge_timeout: Duration::from_secs(30),
            max_restarts: 3,
            restart_backoff: Duration::from_millis(500),
            poison_threshold: 2,
            mem_limit: None,
            poll: Duration::from_millis(50),
            workdir: PathBuf::from("."),
            merged_journal: None,
            log: log_to_stderr,
        }
    }
}

/// Default [`DispatchOptions::log`] sink: one line to stderr.
fn log_to_stderr(line: &str) {
    eprintln!("{line}");
}

/// Why the supervisor declared a shard incarnation dead.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeathCause {
    /// The child exited with a non-zero status (or a signal) the
    /// supervisor did not inflict and cannot attribute to memory.
    Crashed {
        /// Human-readable exit status (`signal 9`, `exit code 101`…).
        status: String,
    },
    /// The progress stream went silent past the wedge timeout; the
    /// supervisor killed the child.
    Wedged {
        /// How long the stream had been silent when the shard was
        /// declared wedged.
        silence: Duration,
    },
    /// The child died of (or was killed for) exceeding the per-shard
    /// memory limit.
    OomKilled {
        /// What convicted it: a cgroup `oom_kill` event, a supervisor
        /// RSS-poll overrun, or a kill signal with the last heartbeat
        /// peak at the limit.
        evidence: String,
    },
}

impl fmt::Display for DeathCause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeathCause::Crashed { status } => write!(f, "crashed ({status})"),
            DeathCause::Wedged { silence } => {
                write!(
                    f,
                    "wedged (no progress events for {}ms)",
                    silence.as_millis()
                )
            }
            DeathCause::OomKilled { evidence } => write!(f, "oom-killed ({evidence})"),
        }
    }
}

/// Terminal state of one shard slot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShardOutcome {
    /// The child ran a sweep to completion (exit code 0 or 2 — 2 is
    /// "completed with failed jobs", which is the sweep's business,
    /// not a process fault).
    Completed {
        /// The child's exit code.
        code: i32,
    },
    /// The shard exhausted [`DispatchOptions::max_restarts`].
    GaveUp,
}

/// One shard's supervision history, for the final report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardSummary {
    /// Which slice this slot ran.
    pub shard: Shard,
    /// Re-spawns consumed (0 = first incarnation completed).
    pub restarts: u32,
    /// Every death the supervisor recorded, in order.
    pub deaths: Vec<DeathCause>,
    /// How the slot ended.
    pub outcome: ShardOutcome,
    /// Progress-stream sequence gaps observed (lost lines).
    pub stream_gaps: u64,
}

/// End-of-fleet summary: per-shard supervision history plus coverage
/// of the full job list in the merged journal.
#[derive(Debug, Clone)]
pub struct FleetReport {
    /// Per-shard outcomes, by shard index.
    pub shards: Vec<ShardSummary>,
    /// Shard-journal merge statistics (`None` if the merge failed).
    pub merge: Option<MergeStats>,
    /// Why the merge failed, when it did.
    pub merge_error: Option<String>,
    /// Where the merged journal was written.
    pub merged_journal: PathBuf,
    /// Jobs whose latest merged record is `ok` or `skipped`.
    pub ok: usize,
    /// Jobs whose latest merged record is `failed`.
    pub failed: usize,
    /// The failed jobs that were poison-quarantined, by key.
    pub poisoned: Vec<String>,
    /// Jobs with no merged record at all (a shard gave up before
    /// reaching them).
    pub missing: Vec<String>,
}

impl FleetReport {
    /// The fleet's process exit code, mirroring `dtexl sweep`: `0`
    /// every job ok, `2` completed with failed (incl. poisoned) jobs,
    /// `1` supervision failure (a shard gave up, jobs are missing, or
    /// the merge failed).
    #[must_use]
    pub fn exit_code(&self) -> u8 {
        let gave_up = self
            .shards
            .iter()
            .any(|s| s.outcome == ShardOutcome::GaveUp);
        if gave_up || !self.missing.is_empty() || self.merge.is_none() {
            1
        } else if self.failed > 0 {
            2
        } else {
            0
        }
    }

    /// Multi-line human summary: fleet coverage, then one line per
    /// shard with restarts and deaths.
    #[must_use]
    pub fn summary(&self) -> String {
        use std::fmt::Write as _;
        let total = self.ok + self.failed + self.missing.len();
        let mut s = format!(
            "fleet: {}/{} jobs ok, {} failed ({} poisoned), {} missing",
            self.ok,
            total,
            self.failed,
            self.poisoned.len(),
            self.missing.len()
        );
        if let Some(err) = &self.merge_error {
            let _ = write!(s, "\n  merge failed: {err}");
        }
        for sh in &self.shards {
            let outcome = match &sh.outcome {
                ShardOutcome::Completed { code } => format!("completed (exit {code})"),
                ShardOutcome::GaveUp => "gave up".into(),
            };
            let _ = write!(
                s,
                "\n  shard {}: {outcome}, {} restart(s)",
                sh.shard, sh.restarts
            );
            for d in &sh.deaths {
                let _ = write!(s, "\n    death: {d}");
            }
        }
        for key in &self.poisoned {
            let _ = write!(s, "\n  poisoned: {key}");
        }
        s
    }
}

/// Tail-side view of one child incarnation's progress stream: which
/// jobs are in flight (blame candidates), the freshest allocator
/// peak, and stream-integrity counters.
#[derive(Debug, Default)]
struct StreamTracker {
    /// Jobs with an `attempt`/`heartbeat` but no `done` yet, mapped to
    /// the latest attempt number seen.
    in_flight: BTreeMap<String, u64>,
    /// Next expected `seq` (gap detection).
    next_seq: u64,
    /// Sequence gaps observed (lost or reordered lines).
    gaps: u64,
    /// Lines whose `pid` was not the supervised child's (stale
    /// writer); such lines are counted and otherwise ignored.
    foreign_pid_lines: u64,
    /// Largest `peak_alloc_bytes` seen on any event.
    last_peak: u64,
}

impl StreamTracker {
    /// Fold one parsed progress line into the tracker. `expect_pid` is
    /// the supervised child's pid; lines stamped with any other pid
    /// are ignored (a stale writer must not pollute blame).
    fn observe(&mut self, line: &ProgressLine, expect_pid: u32) {
        if line.pid.is_some_and(|p| p != expect_pid) {
            self.foreign_pid_lines += 1;
            return;
        }
        if let Some(seq) = line.seq {
            if seq != self.next_seq {
                self.gaps += 1;
            }
            self.next_seq = seq + 1;
        }
        self.last_peak = self.last_peak.max(line.peak_alloc_bytes);
        match line.event.as_str() {
            // `attempt` marks real execution; a heartbeat implies it
            // too (covers a lost attempt line).
            "attempt" | "heartbeat" => {
                self.in_flight.insert(line.key.clone(), line.attempt);
            }
            "done" => {
                self.in_flight.remove(&line.key);
            }
            _ => {}
        }
    }
}

/// One live child process plus the supervisor's tail state for it.
#[derive(Debug)]
struct RunningShard {
    child: Child,
    pid: u32,
    /// Tail state for the incarnation's `--progress-to` stream.
    tail: TailReader,
    tracker: StreamTracker,
    /// When the progress stream last produced a complete line (spawn
    /// time initially) — the wedge clock.
    last_event: Instant,
    /// Set when the supervisor kills the child deliberately, so the
    /// reaped exit status is classified as that cause rather than
    /// re-diagnosed.
    kill_cause: Option<DeathCause>,
    /// The child's cgroup directory, when kernel enforcement is on.
    cgroup: Option<PathBuf>,
}

/// Supervision state of one shard slot.
#[derive(Debug)]
enum Phase {
    /// Waiting out the restart backoff (or the initial spawn).
    Pending { at: Instant },
    /// A child incarnation is (believed) alive.
    Running(Box<RunningShard>),
    /// The child exited cleanly; the slot is done.
    Completed { code: i32 },
    /// Restart budget exhausted.
    GaveUp,
}

/// One shard slot: persistent identity, restart ledger and blame
/// counts that survive incarnations.
struct ShardState {
    shard: Shard,
    journal: PathBuf,
    phase: Phase,
    /// Spawns performed so far (incarnation counter).
    incarnations: u32,
    /// Re-spawns consumed (`incarnations - 1` once running).
    restarts: u32,
    deaths: Vec<DeathCause>,
    /// Shard deaths blamed on each job key (across incarnations).
    blame: BTreeMap<String, u32>,
    /// Keys already quarantined (so one journal line each).
    poisoned: BTreeSet<String>,
    /// Stream gaps accumulated across incarnations.
    stream_gaps: u64,
}

/// A status-endpoint snapshot of one shard slot — everything the
/// daemon's status document reports per shard, extracted in one place
/// so the supervision internals stay private to this module.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct ShardView {
    /// Shard index.
    pub index: u32,
    /// State-machine phase: `pending`, `healthy`, `completed`,
    /// `gave_up`.
    pub phase: &'static str,
    /// The live child's pid, when one is running.
    pub pid: Option<u32>,
    /// Re-spawns consumed so far.
    pub restarts: u32,
    /// Every death recorded, rendered human-readable, in order.
    pub deaths: Vec<String>,
    /// Keys currently in flight on the live incarnation.
    pub in_flight: Vec<String>,
    /// Largest allocator peak seen on the live incarnation's stream.
    pub peak_alloc_bytes: u64,
    /// Milliseconds of restart backoff still to wait (0 unless
    /// pending).
    pub backoff_ms: u64,
}

/// Coverage of a job list against the latest merged journal entries.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub(crate) struct Coverage {
    /// Jobs whose latest record is `ok` or `skipped`.
    pub ok: usize,
    /// Jobs whose latest record is `failed`.
    pub failed: usize,
    /// The failed jobs that were poison-quarantined, by key.
    pub poisoned: Vec<String>,
    /// Jobs with no record at all.
    pub missing: Vec<String>,
}

/// Audit a key set against a latest-entry lookup (shared between the
/// one-shot fleet's end-of-run report and the daemon's live status).
pub(crate) fn audit_coverage<'a, K, F>(keys: K, lookup: F) -> Coverage
where
    K: IntoIterator<Item = &'a String>,
    F: Fn(&str) -> Option<&'a JournalEntry>,
{
    let mut cov = Coverage::default();
    for key in keys {
        match lookup(key) {
            Some(e) if e.status == "ok" || e.status == "skipped" => cov.ok += 1,
            Some(e) if e.status == "failed" => {
                cov.failed += 1;
                if e.error_kind.as_deref() == Some("poisoned") {
                    cov.poisoned.push(key.clone());
                }
            }
            _ => cov.missing.push(key.clone()),
        }
    }
    cov
}

/// A supervised fleet of shard processes, one tick at a time.
///
/// [`dispatch_fleet`] owns the classic one-shot loop (tick until
/// settled, then merge); the daemon drives the same machine manually
/// so it can interleave spool ingestion, live merging and status
/// publication between ticks, and revive workers that exit while the
/// queue is still open.
pub(crate) struct Fleet {
    spec: FleetSpec,
    /// key → (index, config_hash) over every job the fleet knows
    /// about; poison records must carry the same hash the child would
    /// have journaled, or the child's resume pass will not honor the
    /// quarantine.
    key_info: BTreeMap<String, (usize, u64)>,
    shards: Vec<ShardState>,
}

impl Fleet {
    /// Build the shard slots (workdir created, nothing spawned yet).
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error when the workdir cannot be
    /// created.
    pub fn new(spec: FleetSpec, opts: &DispatchOptions) -> std::io::Result<Self> {
        let shard_count = spec.shards.max(1);
        std::fs::create_dir_all(&opts.workdir)?;
        let mut key_info: BTreeMap<String, (usize, u64)> = BTreeMap::new();
        for (index, job) in spec.jobs.iter().enumerate() {
            key_info.insert(job.key(), (index, job.config_hash()));
        }
        let mut shards: Vec<ShardState> = Vec::with_capacity(shard_count as usize);
        for index in 0..shard_count {
            let shard = match Shard::new(index, shard_count) {
                Ok(s) => s,
                // Unreachable (index < count by construction), but the
                // supervisor must not panic over it.
                Err(_) => continue,
            };
            shards.push(ShardState {
                shard,
                journal: opts.workdir.join(format!("shard-{index}.jsonl")),
                phase: Phase::Pending { at: Instant::now() },
                incarnations: 0,
                restarts: 0,
                deaths: Vec::new(),
                blame: BTreeMap::new(),
                poisoned: BTreeSet::new(),
                stream_gaps: 0,
            });
        }
        Ok(Self {
            spec,
            key_info,
            shards,
        })
    }

    /// Register newly accepted jobs (daemon spool ingest). Returns how
    /// many were new to the fleet; already-known keys are ignored.
    pub fn extend_jobs(&mut self, jobs: &[SweepJob]) -> usize {
        let mut added = 0;
        for job in jobs {
            let key = job.key();
            if !self.key_info.contains_key(&key) {
                let index = self.spec.jobs.len();
                self.key_info.insert(key, (index, job.config_hash()));
                self.spec.jobs.push(*job);
                added += 1;
            }
        }
        added
    }

    /// Advance every shard slot by one supervision tick. Returns
    /// `true` when every slot is settled (completed or gave up).
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error when a child cannot be spawned
    /// or a poison record cannot be journaled.
    pub fn tick(&mut self, opts: &DispatchOptions) -> std::io::Result<bool> {
        let mut settled = true;
        for state in &mut self.shards {
            step_shard(state, &self.spec, opts, &self.key_info)?;
            settled &= matches!(state.phase, Phase::Completed { .. } | Phase::GaveUp);
        }
        Ok(settled)
    }

    /// Re-open completed slots (daemon mode, queue still open): a
    /// worker that exited cleanly goes back to pending for a fresh
    /// incarnation. Not a restart — nothing died; the slot is revived
    /// because more work can still arrive. Gave-up slots stay down.
    pub fn revive_completed(&mut self, opts: &DispatchOptions) {
        let log = opts.log;
        for state in &mut self.shards {
            if let Phase::Completed { code } = state.phase {
                log(&format!(
                    "dispatch: shard {} exited (code {code}) with the queue still open; reviving",
                    state.shard
                ));
                state.phase = Phase::Pending { at: Instant::now() };
            }
        }
    }

    /// Every shard's journal path (existing or not).
    pub fn journals(&self) -> Vec<PathBuf> {
        self.shards.iter().map(|s| s.journal.clone()).collect()
    }

    /// The fleet's key → (index, config_hash) map.
    pub fn key_info(&self) -> &BTreeMap<String, (usize, u64)> {
        &self.key_info
    }

    /// Status-endpoint snapshots, one per shard slot.
    pub fn views(&self) -> Vec<ShardView> {
        self.shards
            .iter()
            .map(|s| {
                let (phase, pid, in_flight, peak, backoff_ms) = match &s.phase {
                    Phase::Pending { at } => (
                        "pending",
                        None,
                        Vec::new(),
                        0,
                        at.saturating_duration_since(Instant::now()).as_millis() as u64,
                    ),
                    Phase::Running(r) => (
                        "healthy",
                        Some(r.pid),
                        r.tracker.in_flight.keys().cloned().collect(),
                        r.tracker.last_peak,
                        0,
                    ),
                    Phase::Completed { .. } => ("completed", None, Vec::new(), 0, 0),
                    Phase::GaveUp => ("gave_up", None, Vec::new(), 0, 0),
                };
                ShardView {
                    index: s.shard.index,
                    phase,
                    pid,
                    restarts: s.restarts,
                    deaths: s.deaths.iter().map(ToString::to_string).collect(),
                    in_flight,
                    peak_alloc_bytes: peak,
                    backoff_ms,
                }
            })
            .collect()
    }

    /// Consume the fleet into per-shard supervision summaries.
    pub fn into_summaries(self) -> Vec<ShardSummary> {
        self.shards
            .into_iter()
            .map(|s| ShardSummary {
                shard: s.shard,
                restarts: s.restarts,
                deaths: s.deaths,
                outcome: match s.phase {
                    Phase::Completed { code } => ShardOutcome::Completed { code },
                    _ => ShardOutcome::GaveUp,
                },
                stream_gaps: s.stream_gaps,
            })
            .collect()
    }
}

/// Spawn, supervise, restart and merge a fleet of shard processes.
///
/// Blocks until every shard completes or gives up, then merges the
/// shard journals and audits coverage. Simulation failures, poison
/// quarantines and gave-up shards are reported in the [`FleetReport`]
/// (see [`FleetReport::exit_code`]); `Err` is reserved for supervisor
/// I/O problems (workdir creation, spawn failures, journal append).
///
/// # Errors
///
/// Returns the underlying I/O error when the workdir cannot be
/// created, a child cannot be spawned, or a poison record cannot be
/// journaled.
pub fn dispatch_fleet(spec: &FleetSpec, opts: &DispatchOptions) -> std::io::Result<FleetReport> {
    let log = opts.log;
    let mut fleet = Fleet::new(spec.clone(), opts)?;
    while !fleet.tick(opts)? {
        std::thread::sleep(opts.poll);
    }

    // Merge the shard journals through the same last-wins path as
    // `dtexl sweep merge`.
    let merged_path = opts
        .merged_journal
        .clone()
        .unwrap_or_else(|| opts.workdir.join("merged.jsonl"));
    let inputs: Vec<PathBuf> = fleet
        .journals()
        .into_iter()
        .filter(|p| p.exists())
        .collect();
    let (merge, merge_error) = match merge_journals(&inputs, &merged_path) {
        Ok(stats) => (Some(stats), None),
        Err(e) => (None, Some(e.to_string())),
    };
    if let Some(err) = &merge_error {
        log(&format!("dispatch: journal merge failed: {err}"));
    }

    // Coverage audit over the supervisor's own job list.
    let merged_text = std::fs::read_to_string(&merged_path).unwrap_or_default();
    let latest = latest_entries(&merged_text);
    let total = fleet.key_info().len();
    let cov = audit_coverage(fleet.key_info().keys(), |k| latest.get(k));

    let report = FleetReport {
        shards: fleet.into_summaries(),
        merge,
        merge_error,
        merged_journal: merged_path,
        ok: cov.ok,
        failed: cov.failed,
        poisoned: cov.poisoned,
        missing: cov.missing,
    };
    log(&format!(
        "dispatch: fleet done: {}/{} ok, {} failed, {} missing (exit {})",
        report.ok,
        total,
        report.failed,
        report.missing.len(),
        report.exit_code()
    ));
    Ok(report)
}

/// Advance one shard slot by one supervision tick.
fn step_shard(
    state: &mut ShardState,
    spec: &FleetSpec,
    opts: &DispatchOptions,
    key_info: &BTreeMap<String, (usize, u64)>,
) -> std::io::Result<()> {
    let log = opts.log;
    match &mut state.phase {
        Phase::Completed { .. } | Phase::GaveUp => {}
        Phase::Pending { at } => {
            if Instant::now() >= *at {
                let running = spawn_shard(state, spec, opts)?;
                state.phase = Phase::Running(Box::new(running));
            }
        }
        Phase::Running(running) => {
            drain_progress(running, &mut state.stream_gaps);
            match running.child.try_wait()? {
                Some(status) => {
                    // Final drain: the child may have flushed events
                    // between our last poll and its exit.
                    drain_progress(running, &mut state.stream_gaps);
                    let cgroup_oom = running.cgroup.as_deref().is_some_and(cgroup_oom_killed);
                    if let Some(cg) = running.cgroup.take() {
                        let _ = std::fs::remove_dir(&cg);
                    }
                    let verdict = classify_exit(
                        &status,
                        running.kill_cause.take(),
                        cgroup_oom,
                        running.tracker.last_peak,
                        opts.mem_limit,
                    );
                    match verdict {
                        Ok(code) => {
                            log(&format!(
                                "dispatch: shard {} pid {} completed (exit {code})",
                                state.shard, running.pid
                            ));
                            state.phase = Phase::Completed { code };
                        }
                        Err(cause) => handle_death(state, cause, opts, key_info)?,
                    }
                }
                None => {
                    // Liveness checks, in escalating order of cost:
                    // wedge (pure clock math), then RSS (a /proc read,
                    // only when the fallback enforcer is active).
                    let silence = running.last_event.elapsed();
                    if silence >= opts.wedge_timeout {
                        let cause = DeathCause::Wedged { silence };
                        log(&format!(
                            "dispatch: shard {} pid {} {cause}; killing it",
                            state.shard, running.pid
                        ));
                        kill_and_reap(running, cause);
                    } else if let (Some(limit), None) = (opts.mem_limit, &running.cgroup) {
                        if let Some(rss) = rss_bytes(running.pid) {
                            if rss > limit {
                                let cause = DeathCause::OomKilled {
                                    evidence: format!("rss {rss} bytes > limit {limit} (polled)"),
                                };
                                log(&format!(
                                    "dispatch: shard {} pid {} {cause}; killing it",
                                    state.shard, running.pid
                                ));
                                kill_and_reap(running, cause);
                            }
                        }
                    }
                    // A kill above is reaped on the next tick through
                    // the `try_wait` arm, with `kill_cause` set.
                }
            }
        }
    }
    Ok(())
}

/// SIGKILL the child and remember why; the next tick reaps it.
fn kill_and_reap(running: &mut RunningShard, cause: DeathCause) {
    running.kill_cause = Some(cause);
    // Kill failures (already-dead child) are fine: try_wait reaps it
    // either way and the recorded cause still applies.
    let _ = running.child.kill();
}

/// Spawn one child incarnation for a shard slot.
fn spawn_shard(
    state: &mut ShardState,
    spec: &FleetSpec,
    opts: &DispatchOptions,
) -> std::io::Result<RunningShard> {
    let log = opts.log;
    state.incarnations += 1;
    let incarnation = state.incarnations;
    // A fresh progress file per incarnation: restarts never truncate a
    // stream the supervisor is mid-tail in.
    let progress_path = opts.workdir.join(format!(
        "shard-{}.run-{incarnation}.progress.jsonl",
        state.shard.index
    ));
    let cgroup = opts
        .mem_limit
        .and_then(|limit| cgroup_create(state.shard.index, limit));
    // Child stdout/stderr land in an append-only per-shard log, so
    // crashes stay debuggable without entangling the supervisor's own
    // stderr.
    let child_log = std::fs::OpenOptions::new().create(true).append(true).open(
        opts.workdir
            .join(format!("shard-{}.log", state.shard.index)),
    )?;
    let child_log_err = child_log.try_clone()?;

    let mut cmd = Command::new(&spec.program);
    cmd.args(&spec.sweep_args)
        .arg("--shard")
        .arg(state.shard.to_string())
        .arg("--journal")
        .arg(&state.journal)
        .arg("--resume")
        .arg("--progress-to")
        .arg(&progress_path)
        .stdin(Stdio::null())
        .stdout(Stdio::from(child_log))
        .stderr(Stdio::from(child_log_err));
    let child = cmd.spawn()?;
    let pid = child.id();
    if let Some(cg) = &cgroup {
        if std::fs::write(cg.join("cgroup.procs"), pid.to_string()).is_err() {
            // Could not place the child in its cgroup: fall back to
            // RSS polling rather than running unenforced.
            let _ = std::fs::remove_dir(cg);
        }
    }
    let enforced = match &cgroup {
        Some(cg) if cg.join("cgroup.procs").exists() => "cgroup",
        _ => {
            if opts.mem_limit.is_some() {
                "rss-poll"
            } else {
                "none"
            }
        }
    };
    log(&format!(
        "dispatch: shard {} pid {pid} spawned (incarnation {incarnation}, mem enforcement: \
         {enforced})",
        state.shard
    ));
    Ok(RunningShard {
        child,
        pid,
        tail: TailReader::new(progress_path),
        tracker: StreamTracker::default(),
        last_event: Instant::now(),
        kill_cause: None,
        cgroup: cgroup.filter(|cg| cg.join("cgroup.procs").exists()),
    })
}

/// Blame the dead incarnation's in-flight jobs, quarantine any that
/// crossed the poison threshold, and either schedule a restart or
/// give the slot up.
fn handle_death(
    state: &mut ShardState,
    cause: DeathCause,
    opts: &DispatchOptions,
    key_info: &BTreeMap<String, (usize, u64)>,
) -> std::io::Result<()> {
    let log = opts.log;
    let in_flight: Vec<(String, u64)> = match &state.phase {
        Phase::Running(r) => r
            .tracker
            .in_flight
            .iter()
            .map(|(k, a)| (k.clone(), *a))
            .collect(),
        _ => Vec::new(),
    };
    log(&format!(
        "dispatch: shard {} died: {cause} ({} job(s) in flight)",
        state.shard,
        in_flight.len()
    ));
    for (key, _attempt) in &in_flight {
        let blame = state.blame.entry(key.clone()).or_insert(0);
        *blame += 1;
        if *blame >= opts.poison_threshold && !state.poisoned.contains(key) {
            let Some(&(index, config_hash)) = key_info.get(key) else {
                log(&format!(
                    "dispatch: cannot quarantine unknown job key {key} (not in the fleet's \
                     job list)"
                ));
                continue;
            };
            let deaths = *blame;
            let record = JobRecord {
                index,
                key: key.clone(),
                status: JobStatus::Failed,
                attempts: deaths,
                elapsed: Duration::ZERO,
                error: Some(JobError::Poisoned { deaths }),
                metrics: None,
                config_hash,
                peak_alloc: None,
                shard: Some(state.shard),
                obs: None,
            };
            let mut journal = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(&state.journal)?;
            writeln!(journal, "{}", journal_line(&record))?;
            journal.flush()?;
            state.poisoned.insert(key.clone());
            log(&format!(
                "dispatch: poisoned job {key}: blamed for {deaths} shard death(s); journaled \
                 and quarantined"
            ));
        }
    }
    state.deaths.push(cause);
    if state.restarts >= opts.max_restarts {
        log(&format!(
            "dispatch: shard {} gave up after {} restart(s)",
            state.shard, state.restarts
        ));
        state.phase = Phase::GaveUp;
        return Ok(());
    }
    state.restarts += 1;
    let exp = state.restarts.saturating_sub(1).min(6);
    let delay = opts.restart_backoff.saturating_mul(1 << exp);
    log(&format!(
        "dispatch: shard {} restart {}/{} in {}ms",
        state.shard,
        state.restarts,
        opts.max_restarts,
        delay.as_millis()
    ));
    state.phase = Phase::Pending {
        at: Instant::now() + delay,
    };
    Ok(())
}

/// Pull newly appended bytes from the shard's progress stream and fold
/// complete lines into the tracker. A trailing partial line (child
/// died mid-write) is carried by the [`TailReader`] until its
/// remainder arrives or the incarnation is abandoned.
fn drain_progress(running: &mut RunningShard, stream_gaps: &mut u64) {
    let gaps_before = running.tracker.gaps;
    let tracker = &mut running.tracker;
    let pid = running.pid;
    let mut saw_event = false;
    running.tail.drain(|line| {
        if let Some(parsed) = parse_progress_line(line) {
            tracker.observe(&parsed, pid);
            saw_event = true;
        }
    });
    if saw_event {
        running.last_event = Instant::now();
    }
    *stream_gaps += running.tracker.gaps - gaps_before;
}

/// Classify a reaped exit status: `Ok(code)` for a clean sweep exit
/// (0 or 2), `Err(cause)` for anything the supervisor must treat as a
/// shard death.
fn classify_exit(
    status: &std::process::ExitStatus,
    kill_cause: Option<DeathCause>,
    cgroup_oom: bool,
    last_peak: u64,
    mem_limit: Option<u64>,
) -> Result<i32, DeathCause> {
    // The supervisor's own kill verdict (wedge / RSS overrun) wins:
    // the exit status is just the SIGKILL it inflicted.
    if let Some(cause) = kill_cause {
        return Err(cause);
    }
    if cgroup_oom {
        return Err(DeathCause::OomKilled {
            evidence: "cgroup memory.events recorded an oom_kill".into(),
        });
    }
    match status.code() {
        Some(code @ (0 | 2)) => Ok(code),
        Some(code) => Err(DeathCause::Crashed {
            status: format!("exit code {code}"),
        }),
        None => {
            // Signal exit the supervisor did not inflict. A kill
            // signal with the last heartbeat's allocator peak at the
            // limit is the kernel OOM killer's signature (the issue's
            // "exit status + last heartbeat peak_alloc_bytes" rule).
            let sig = exit_signal(status);
            if mem_limit.is_some_and(|limit| last_peak >= limit) {
                return Err(DeathCause::OomKilled {
                    evidence: format!(
                        "killed by signal {} with last heartbeat peak {last_peak} bytes at the \
                         {}-byte limit",
                        sig.unwrap_or(-1),
                        mem_limit.unwrap_or(0)
                    ),
                });
            }
            Err(DeathCause::Crashed {
                status: match sig {
                    Some(s) => format!("signal {s}"),
                    None => "unknown abnormal exit".into(),
                },
            })
        }
    }
}

/// The signal that terminated the child, on unix.
#[cfg(unix)]
fn exit_signal(status: &std::process::ExitStatus) -> Option<i32> {
    use std::os::unix::process::ExitStatusExt as _;
    status.signal()
}

/// Non-unix fallback: signals are not observable.
#[cfg(not(unix))]
fn exit_signal(_status: &std::process::ExitStatus) -> Option<i32> {
    None
}

/// The child's resident set size from `/proc/<pid>/status` (`VmRSS`),
/// for the fallback enforcer when no cgroup is available.
fn rss_bytes(pid: u32) -> Option<u64> {
    let status = std::fs::read_to_string(format!("/proc/{pid}/status")).ok()?;
    let line = status.lines().find(|l| l.starts_with("VmRSS:"))?;
    let kb: u64 = line
        .split_whitespace()
        .nth(1)
        .and_then(|v| v.parse().ok())?;
    Some(kb * 1024)
}

/// Best-effort cgroup-v2 setup: a dedicated child cgroup with
/// `memory.max` set. Any failure (no cgroup2 mount, read-only fs,
/// unprivileged) returns `None` and the caller falls back to RSS
/// polling.
fn cgroup_create(shard_index: u32, limit: u64) -> Option<PathBuf> {
    let base = Path::new("/sys/fs/cgroup");
    // cgroup-v2 signature: the unified hierarchy exposes
    // `cgroup.controllers` at the mount root.
    if !base.join("cgroup.controllers").exists() {
        return None;
    }
    let dir = base.join(format!(
        "dtexl-dispatch-{}-s{shard_index}",
        std::process::id()
    ));
    std::fs::create_dir(&dir).ok()?;
    if std::fs::write(dir.join("memory.max"), limit.to_string()).is_err() {
        let _ = std::fs::remove_dir(&dir);
        return None;
    }
    Some(dir)
}

/// Whether the child's cgroup recorded a kernel OOM kill.
fn cgroup_oom_killed(cgroup: &Path) -> bool {
    std::fs::read_to_string(cgroup.join("memory.events")).is_ok_and(|events| {
        events.lines().any(|l| {
            l.split_once(' ')
                .is_some_and(|(k, v)| k == "oom_kill" && v.trim().parse::<u64>().unwrap_or(0) > 0)
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(event: &str, key: &str, seq: u64, pid: u32) -> ProgressLine {
        ProgressLine {
            event: event.into(),
            key: key.into(),
            index: 0,
            attempt: 1,
            elapsed_ms: 0,
            peak_alloc_bytes: 0,
            shard: None,
            pid: Some(pid),
            seq: Some(seq),
            status: None,
            top_stall: None,
            dram_requests: None,
        }
    }

    #[test]
    fn tracker_follows_the_job_lifecycle() {
        let mut t = StreamTracker::default();
        t.observe(&line("start", "a", 0, 7), 7);
        assert!(t.in_flight.is_empty(), "start alone is not execution");
        t.observe(&line("attempt", "a", 1, 7), 7);
        assert_eq!(t.in_flight.len(), 1);
        t.observe(&line("heartbeat", "a", 2, 7), 7);
        t.observe(&line("attempt", "b", 3, 7), 7);
        assert_eq!(t.in_flight.len(), 2);
        t.observe(&line("done", "a", 4, 7), 7);
        assert_eq!(t.in_flight.len(), 1);
        assert!(t.in_flight.contains_key("b"));
        assert_eq!(t.gaps, 0);
    }

    #[test]
    fn tracker_detects_gaps_and_foreign_pids() {
        let mut t = StreamTracker::default();
        t.observe(&line("attempt", "a", 0, 7), 7);
        // seq 1 lost:
        t.observe(&line("heartbeat", "a", 2, 7), 7);
        assert_eq!(t.gaps, 1);
        // A stale writer's line is counted but never folds into state.
        t.observe(&line("done", "a", 3, 99), 7);
        assert_eq!(t.foreign_pid_lines, 1);
        assert!(t.in_flight.contains_key("a"), "foreign done ignored");
        t.observe(&line("done", "a", 3, 7), 7);
        assert!(t.in_flight.is_empty());
    }

    #[test]
    fn tracker_tracks_the_peak_high_water_mark() {
        let mut t = StreamTracker::default();
        let mut hb = line("heartbeat", "a", 0, 7);
        hb.peak_alloc_bytes = 10_000;
        t.observe(&hb, 7);
        let mut hb2 = line("heartbeat", "a", 1, 7);
        hb2.peak_alloc_bytes = 4_000;
        t.observe(&hb2, 7);
        assert_eq!(t.last_peak, 10_000, "peak is monotone");
    }

    #[test]
    fn exit_classification_covers_the_state_machine() {
        use std::process::Command;
        let ok = Command::new("true").status().expect("run /bin/true");
        let fail = Command::new("false").status().expect("run /bin/false");
        // Clean sweep exits: 0 completes, non-0/2 codes crash.
        assert_eq!(classify_exit(&ok, None, false, 0, None), Ok(0));
        assert_eq!(
            classify_exit(&fail, None, false, 0, None),
            Err(DeathCause::Crashed {
                status: "exit code 1".into()
            })
        );
        // A supervisor-inflicted kill keeps its recorded cause.
        let cause = DeathCause::Wedged {
            silence: Duration::from_secs(5),
        };
        assert_eq!(
            classify_exit(&ok, Some(cause.clone()), false, 0, None),
            Err(cause)
        );
        // cgroup OOM evidence outranks the raw status.
        assert!(matches!(
            classify_exit(&ok, None, true, 0, None),
            Err(DeathCause::OomKilled { .. })
        ));
    }

    #[test]
    fn signal_exits_classify_as_oom_only_with_memory_evidence() {
        use std::process::Command;
        // A child killed by SIGKILL: spawn a sleeper and kill it.
        let mut child = Command::new("sleep")
            .arg("30")
            .spawn()
            .expect("spawn sleep");
        child.kill().expect("kill sleep");
        let status = child.wait().expect("reap sleep");
        // No memory limit: a kill signal is a crash.
        assert!(matches!(
            classify_exit(&status, None, false, 0, None),
            Err(DeathCause::Crashed { .. })
        ));
        // With a limit and the last heartbeat peak at/over it, the
        // same status convicts the OOM killer.
        assert!(matches!(
            classify_exit(&status, None, false, 600, Some(512)),
            Err(DeathCause::OomKilled { .. })
        ));
        // Peak below the limit: still a crash.
        assert!(matches!(
            classify_exit(&status, None, false, 100, Some(512)),
            Err(DeathCause::Crashed { .. })
        ));
    }

    #[test]
    fn fleet_report_exit_codes_mirror_the_sweep() {
        let base = FleetReport {
            shards: vec![ShardSummary {
                shard: Shard::new(0, 1).expect("valid shard"),
                restarts: 0,
                deaths: Vec::new(),
                outcome: ShardOutcome::Completed { code: 0 },
                stream_gaps: 0,
            }],
            merge: Some(MergeStats::default()),
            merge_error: None,
            merged_journal: PathBuf::from("merged.jsonl"),
            ok: 4,
            failed: 0,
            poisoned: Vec::new(),
            missing: Vec::new(),
        };
        assert_eq!(base.exit_code(), 0);
        let with_failures = FleetReport {
            failed: 1,
            poisoned: vec!["k".into()],
            ..base.clone()
        };
        assert_eq!(with_failures.exit_code(), 2);
        let gave_up = FleetReport {
            shards: vec![ShardSummary {
                outcome: ShardOutcome::GaveUp,
                ..base.shards[0].clone()
            }],
            ..base.clone()
        };
        assert_eq!(gave_up.exit_code(), 1);
        let missing = FleetReport {
            missing: vec!["k".into()],
            ..base.clone()
        };
        assert_eq!(missing.exit_code(), 1);
        let merge_failed = FleetReport {
            merge: None,
            merge_error: Some("divergent".into()),
            ..base
        };
        assert_eq!(merge_failed.exit_code(), 1);
    }

    #[test]
    fn rss_probe_reads_this_process() {
        let rss = rss_bytes(std::process::id()).expect("/proc is available in tests");
        assert!(rss > 0, "a live process has resident pages");
    }
}
