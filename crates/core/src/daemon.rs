//! Long-running sweep daemon: a spool-fed fleet supervisor with
//! merge-as-you-go and a pollable status endpoint.
//!
//! [`dispatch_fleet`](crate::dispatch::dispatch_fleet) runs one fixed
//! batch and merges at exit. The daemon ([`run_daemon`]) runs the same
//! per-shard supervision state machine *open-ended*:
//!
//! * **Durable spool.** Jobs arrive through a [`Spool`] directory —
//!   `dtexl sweep submit` atomically appends content-addressed batches
//!   to `incoming/`, the daemon validates and moves them to
//!   `accepted/`, and the shard workers (child `dtexl sweep --spool`
//!   processes, [`run_spool_worker`]) rescan `accepted/` between
//!   generations. New work flows to healthy workers without
//!   restarting them.
//! * **Merge-as-you-go.** A live merger tails every shard journal and
//!   maintains `merged.jsonl` + `merged.canon` with the same
//!   last-wins / ok-over-failed / divergence semantics as
//!   `dtexl sweep merge` ([`MergeAccumulator`]). A daemon crash loses
//!   no completed work: shard journals are the source of truth, and a
//!   restarted daemon re-folds them from byte 0 into a bit-identical
//!   merged view.
//! * **Status endpoint.** An atomically-swapped `status.json`
//!   ([`DaemonStatus`]) — and, on unix, a socket speaking the same
//!   document — reports queue depth, per-shard state-machine phase,
//!   in-flight keys, completed/failed/poisoned counts, live
//!   peak-alloc and restart/backoff history. Dashboards and CI poll
//!   the file; nothing blocks on a reader.
//! * **Metrics plane.** A [`DaemonMetrics`] registry fed every tick
//!   is exposed as Prometheus text format two ways: an
//!   atomically-swapped `metrics.prom` in the spool and a `metrics`
//!   line command on the status socket (see `crate::registry` and
//!   `docs/OBSERVABILITY.md`).
//! * **Graceful drain.** SIGTERM/SIGINT (via the CLI's shutdown hook)
//!   writes the spool's drain marker: submission of new batches
//!   stops, workers finish everything already accepted and exit, the
//!   final merge is flushed, and a terminal status (`alive: false`)
//!   is swapped in before the daemon returns.
//!
//! Wall-clock use (poll sleeps, supervision timers) is intrinsic to a
//! daemon, as in the dispatch module; the determinism lint allows it
//! here by scoped built-in allowlist entries.

use crate::dispatch::{audit_coverage, DispatchOptions, Fleet, FleetSpec, ShardSummary, ShardView};
use crate::registry::{DaemonMetrics, RESTART_CAUSES};
use crate::spool::{atomic_write, field_bool, jobs_from_specs, Spool, EVENTS_ROTATE_BYTES};
use crate::sweep::{
    canon_text, field_str, field_u64, journal_line, json_escape, latest_entries, run_sweep,
    JobError, JobRecord, JobStatus, MergeAccumulator, MergeStats, Progress, ProgressKind, SweepJob,
    SweepOptions,
};
use crate::tail::TailReader;
use std::collections::BTreeSet;
use std::path::PathBuf;
use std::time::Duration;

// --- status document -------------------------------------------------------

/// One shard slot's row in the status document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardStatus {
    /// Shard index.
    pub index: u32,
    /// Supervision phase: `pending`, `healthy`, `completed`,
    /// `gave_up`.
    pub phase: String,
    /// The live child's pid, when one is running.
    pub pid: Option<u32>,
    /// Re-spawns consumed so far.
    pub restarts: u32,
    /// Milliseconds of restart backoff still to wait (0 unless
    /// pending).
    pub backoff_ms: u64,
    /// Largest allocator peak seen on the live incarnation's progress
    /// stream (bytes).
    pub peak_alloc_bytes: u64,
    /// Every death recorded for this slot, human-readable, in order.
    pub deaths: Vec<String>,
    /// Keys currently in flight on the live incarnation.
    pub in_flight: Vec<String>,
}

impl ShardStatus {
    fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut s = format!(
            "{{\"index\":{},\"phase\":\"{}\"",
            self.index,
            json_escape(&self.phase)
        );
        if let Some(pid) = self.pid {
            let _ = write!(s, ",\"pid\":{pid}");
        }
        let _ = write!(
            s,
            ",\"restarts\":{},\"backoff_ms\":{},\"peak_alloc_bytes\":{},\"deaths\":{},\
             \"in_flight\":{}",
            self.restarts,
            self.backoff_ms,
            self.peak_alloc_bytes,
            str_array(&self.deaths),
            str_array(&self.in_flight)
        );
        s.push('}');
        s
    }

    fn parse(obj: &str) -> Option<Self> {
        Some(Self {
            index: u32::try_from(field_u64(obj, "index")?).ok()?,
            phase: field_str(obj, "phase")?,
            pid: field_u64(obj, "pid").and_then(|p| u32::try_from(p).ok()),
            restarts: u32::try_from(field_u64(obj, "restarts")?).ok()?,
            backoff_ms: field_u64(obj, "backoff_ms")?,
            peak_alloc_bytes: field_u64(obj, "peak_alloc_bytes")?,
            deaths: field_str_array(obj, "deaths")?,
            in_flight: field_str_array(obj, "in_flight")?,
        })
    }
}

/// The daemon's pollable status document — the exact content of the
/// spool's `status.json` (and of one socket response). Serialized with
/// [`to_json`](Self::to_json), parsed back with
/// [`parse`](Self::parse); the pair round-trips field-by-field so
/// tooling can consume the file without a JSON library.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DaemonStatus {
    /// `active` (work queued or in flight), `draining` (drain
    /// requested, work remains), `drained` (queue empty, nothing in
    /// flight — the state CI polls for), or `stopped` (terminal write
    /// with work left behind, e.g. a shard gave up).
    pub state: String,
    /// `false` only on the terminal status written as the daemon
    /// exits.
    pub alive: bool,
    /// The daemon process's pid.
    pub pid: u32,
    /// Status-write counter (bumps once per swapped file; a reader
    /// seeing the same `seq` twice is reading the same snapshot).
    pub seq: u64,
    /// Whether a drain has been requested.
    pub draining: bool,
    /// Jobs the fleet knows about (accepted batches, deduplicated by
    /// key).
    pub submitted_jobs: u64,
    /// Jobs with no terminal record in the live merge yet — the queue
    /// depth, in-flight work included.
    pub queued: u64,
    /// Jobs whose latest merged record is `ok`/`skipped`.
    pub ok: u64,
    /// Jobs whose latest merged record is `failed`.
    pub failed: u64,
    /// The failed jobs that were poison-quarantined.
    pub poisoned: u64,
    /// Batches accepted from `incoming/` so far.
    pub batches_accepted: u64,
    /// Batches dropped as content-duplicates of accepted ones.
    pub batches_duplicate: u64,
    /// Batches quarantined as corrupt.
    pub batches_rejected: u64,
    /// Largest live allocator peak across shard streams (bytes).
    pub peak_alloc_bytes: u64,
    /// Keys in flight across all shards.
    pub in_flight: Vec<String>,
    /// Per-shard supervision rows.
    pub shards: Vec<ShardStatus>,
}

impl DaemonStatus {
    /// Render the document as one line of JSON (no trailing newline).
    #[must_use]
    pub fn to_json(&self) -> String {
        let shards: Vec<String> = self.shards.iter().map(ShardStatus::to_json).collect();
        format!(
            "{{\"state\":\"{}\",\"alive\":{},\"pid\":{},\"seq\":{},\"draining\":{},\
             \"submitted_jobs\":{},\"queued\":{},\"ok\":{},\"failed\":{},\"poisoned\":{},\
             \"batches_accepted\":{},\"batches_duplicate\":{},\"batches_rejected\":{},\
             \"peak_alloc_bytes\":{},\"in_flight\":{},\"shards\":[{}]}}",
            json_escape(&self.state),
            self.alive,
            self.pid,
            self.seq,
            self.draining,
            self.submitted_jobs,
            self.queued,
            self.ok,
            self.failed,
            self.poisoned,
            self.batches_accepted,
            self.batches_duplicate,
            self.batches_rejected,
            self.peak_alloc_bytes,
            str_array(&self.in_flight),
            shards.join(",")
        )
    }

    /// Parse a document rendered by [`to_json`](Self::to_json); `None`
    /// for blank, truncated or corrupt input (a poller may race the
    /// very first atomic swap and read an empty file).
    #[must_use]
    pub fn parse(text: &str) -> Option<Self> {
        let text = text.trim();
        if text.is_empty() || !text.starts_with('{') || !text.ends_with('}') {
            return None;
        }
        // Top-level fields are serialized before the shards array, so
        // first-occurrence field extraction below never reads a
        // shard's field; the shards are parsed from their own
        // substrings.
        let shards_tag = "\"shards\":[";
        let shards_at = text.find(shards_tag)?;
        let head = &text[..shards_at];
        let tail = &text[shards_at + shards_tag.len()..];
        let mut shards = Vec::new();
        for chunk in tail.split("{\"index\":").skip(1) {
            shards.push(ShardStatus::parse(&format!("{{\"index\":{chunk}"))?);
        }
        Some(Self {
            state: field_str(head, "state")?,
            alive: field_bool(head, "alive")?,
            pid: u32::try_from(field_u64(head, "pid")?).ok()?,
            seq: field_u64(head, "seq")?,
            draining: field_bool(head, "draining")?,
            submitted_jobs: field_u64(head, "submitted_jobs")?,
            queued: field_u64(head, "queued")?,
            ok: field_u64(head, "ok")?,
            failed: field_u64(head, "failed")?,
            poisoned: field_u64(head, "poisoned")?,
            batches_accepted: field_u64(head, "batches_accepted")?,
            batches_duplicate: field_u64(head, "batches_duplicate")?,
            batches_rejected: field_u64(head, "batches_rejected")?,
            peak_alloc_bytes: field_u64(head, "peak_alloc_bytes")?,
            in_flight: field_str_array(head, "in_flight")?,
            shards,
        })
    }

    /// Multi-line human rendering for `dtexl sweep status`.
    #[must_use]
    pub fn summary(&self) -> String {
        use std::fmt::Write as _;
        let mut s = format!(
            "daemon {} (pid {}, seq {}): {} queued / {} submitted, {} ok, {} failed ({} \
             poisoned), {} in flight",
            self.state,
            self.pid,
            self.seq,
            self.queued,
            self.submitted_jobs,
            self.ok,
            self.failed,
            self.poisoned,
            self.in_flight.len()
        );
        let _ = write!(
            s,
            "\n  batches: {} accepted, {} duplicate, {} rejected; live peak {} bytes",
            self.batches_accepted,
            self.batches_duplicate,
            self.batches_rejected,
            self.peak_alloc_bytes
        );
        for sh in &self.shards {
            let pid = sh.pid.map_or_else(|| "-".to_string(), |p| p.to_string());
            let _ = write!(
                s,
                "\n  shard {}: {} (pid {pid}), {} restart(s), {} in flight, peak {} bytes",
                sh.index,
                sh.phase,
                sh.restarts,
                sh.in_flight.len(),
                sh.peak_alloc_bytes
            );
            if sh.backoff_ms > 0 {
                let _ = write!(s, ", backoff {}ms", sh.backoff_ms);
            }
            for d in &sh.deaths {
                let _ = write!(s, "\n    death: {d}");
            }
        }
        s
    }
}

/// Render a string slice as a JSON array of escaped strings.
fn str_array(items: &[String]) -> String {
    let quoted: Vec<String> = items
        .iter()
        .map(|s| format!("\"{}\"", json_escape(s)))
        .collect();
    format!("[{}]", quoted.join(","))
}

/// Extract a `"field":["a","b"]` string array. The serializer only
/// ever puts keys, phase names and death descriptions in these arrays
/// — none of which contain quotes, brackets or commas-inside-quotes —
/// so scanning to the first `]` and splitting on `","` is exact for
/// every document this module produces.
fn field_str_array(obj: &str, field: &str) -> Option<Vec<String>> {
    let tag = format!("\"{field}\":[");
    let start = obj.find(&tag)? + tag.len();
    let body = &obj[start..obj[start..].find(']')? + start];
    if body.trim().is_empty() {
        return Some(Vec::new());
    }
    Some(
        body.split("\",\"")
            .map(|s| s.trim_matches('"').to_string())
            .collect(),
    )
}

// --- live merger -----------------------------------------------------------

/// Merge-as-you-go: tails every shard journal and re-renders the
/// merged journal + canon view whenever new lines land. Rendering is
/// a pure function of the winning line set, so a daemon restart that
/// re-folds the journals from byte 0 reproduces both files
/// bit-identically.
struct LiveMerger {
    tails: Vec<TailReader>,
    acc: MergeAccumulator,
    merged_path: PathBuf,
    canon_path: PathBuf,
    /// First divergence observed, if any (never auto-resolved; the
    /// offending line is not folded and the daemon reports the error).
    diverged: Option<String>,
}

impl LiveMerger {
    fn new(journals: Vec<PathBuf>, merged_path: PathBuf, canon_path: PathBuf) -> Self {
        Self {
            tails: journals.into_iter().map(TailReader::new).collect(),
            acc: MergeAccumulator::new(),
            merged_path,
            canon_path,
            diverged: None,
        }
    }

    /// Drain every journal tail; rewrite the merged journal and canon
    /// view if anything changed. Returns whether new lines landed.
    fn tick(&mut self) -> std::io::Result<bool> {
        let mut folded = false;
        let acc = &mut self.acc;
        let diverged = &mut self.diverged;
        for tail in &mut self.tails {
            tail.drain(|line| {
                match acc.fold_line(line) {
                    Ok(()) => folded = true,
                    // Keep folding the rest: one divergent line must
                    // not stall the merge of every other job.
                    Err(e) => {
                        if diverged.is_none() {
                            *diverged = Some(e.to_string());
                        }
                    }
                }
            });
        }
        if folded {
            let merged = self.acc.render();
            atomic_write(&self.merged_path, &merged)?;
            atomic_write(&self.canon_path, &canon_text(&merged))?;
        }
        Ok(folded)
    }
}

// --- spool worker (child side) ---------------------------------------------

/// Knobs for [`run_spool_worker`] (`dtexl sweep --spool`).
#[derive(Debug, Clone)]
pub struct WorkerOptions {
    /// Base pipeline configuration job specs are materialized under
    /// (must match the daemon's, or config hashes diverge and resume
    /// breaks).
    pub pipeline: dtexl_pipeline::PipelineConfig,
    /// Sleep between spool scans when the queue is empty.
    pub poll: Duration,
    /// Sweep execution knobs (journal, shard, retries, progress hook,
    /// …). `resume` is forced on — a spool worker must honor poison
    /// quarantines and its own prior work.
    pub sweep: SweepOptions,
    /// Polled between scan passes; `true` is treated exactly like the
    /// spool's drain marker. A fn pointer (like
    /// [`SweepOptions::sleeper`]) so the options stay `Clone` +
    /// `Debug`; the CLI wires its signal flag here.
    pub shutdown: fn() -> bool,
}

impl Default for WorkerOptions {
    fn default() -> Self {
        Self {
            pipeline: dtexl_pipeline::PipelineConfig::default(),
            poll: Duration::from_millis(100),
            sweep: SweepOptions::default(),
            shutdown: || false,
        }
    }
}

/// What one [`run_spool_worker`] call did.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WorkerReport {
    /// Sweep generations executed (scan passes that found work).
    pub generations: u64,
    /// Jobs dispatched across all generations.
    pub jobs_run: usize,
    /// Jobs in this worker's shard whose latest journal record is
    /// `failed` at the current config hash, as of exit.
    pub failed: usize,
    /// Accepted batch files that failed to read/parse during scans
    /// (high-water count; the daemon quarantines corruption before
    /// acceptance, so this is normally 0).
    pub corrupt_batches: u64,
}

impl WorkerReport {
    /// Process exit code, mirroring `dtexl sweep`: 0 all ok, 2
    /// completed with failed jobs.
    #[must_use]
    pub fn exit_code(&self) -> u8 {
        if self.failed > 0 {
            2
        } else {
            0
        }
    }
}

/// This worker's slice of the spool queue right now: every accepted
/// spec, materialized, shard-filtered, minus jobs with a terminal
/// journal record at the current config hash.
fn pending_jobs(spool: &Spool, opts: &WorkerOptions, journal_text: &str) -> (Vec<SweepJob>, u64) {
    let (specs, corrupt) = spool.accepted_specs();
    let latest = latest_entries(journal_text);
    let jobs = jobs_from_specs(&specs, &opts.pipeline)
        .into_iter()
        .filter(|job| {
            opts.sweep
                .shard
                .is_none_or(|shard| shard.contains(&job.key()))
        })
        // Any journaled record at the current hash — ok, skipped,
        // failed, poisoned — is terminal across daemon generations.
        // (Plain resume re-runs failures, which is right for a
        // one-shot sweep; an idle-looping worker re-running a
        // deterministic failure forever is not. To re-run a failed
        // job, clear the journal or change the config.)
        .filter(|job| {
            latest
                .get(&job.key())
                .is_none_or(|e| e.config_hash != Some(job.config_hash()))
        })
        .collect();
    (jobs, corrupt)
}

/// Drive one shard worker against a spool until drained: scan
/// `accepted/`, run what is pending, idle (emitting
/// [`ProgressKind::Idle`] beats so a supervisor's wedge detection sees
/// a live child) when nothing is, exit when the drain marker is set
/// and the queue is empty.
///
/// # Errors
///
/// Returns the underlying I/O error when the journal cannot be read
/// or appended ([`run_sweep`](crate::sweep::run_sweep)'s error
/// surface).
pub fn run_spool_worker(spool: &Spool, opts: &WorkerOptions) -> std::io::Result<WorkerReport> {
    let mut sweep_opts = opts.sweep.clone();
    sweep_opts.resume = true;
    let journal = sweep_opts.journal.clone();
    let read_journal = |journal: &Option<PathBuf>| -> String {
        journal
            .as_ref()
            .and_then(|p| std::fs::read_to_string(p).ok())
            .unwrap_or_default()
    };

    let mut report = WorkerReport::default();
    let mut idle_seq: u64 = 0;
    loop {
        let journal_text = read_journal(&journal);
        let (pending, corrupt) = pending_jobs(spool, opts, &journal_text);
        report.corrupt_batches = report.corrupt_batches.max(corrupt);
        if pending.is_empty() {
            if spool.drain_requested() || (opts.shutdown)() {
                break;
            }
            if let Some(hook) = sweep_opts.progress {
                hook(&Progress {
                    kind: ProgressKind::Idle,
                    key: String::new(),
                    index: 0,
                    attempt: 0,
                    elapsed: Duration::ZERO,
                    peak_alloc_bytes: 0,
                    shard: sweep_opts.shard,
                    pid: std::process::id(),
                    seq: idle_seq,
                    status: None,
                    top_stall: None,
                    dram_requests: None,
                });
                idle_seq += 1;
            }
            // lint: allow(determinism-clock) -- idle pacing between spool scans; no simulated metric depends on it
            std::thread::sleep(opts.poll);
            continue;
        }
        report.generations += 1;
        report.jobs_run += pending.len();
        // keep-going within the generation: one failed job must not
        // strand the rest of the queue.
        sweep_opts.keep_going = true;
        run_sweep(&pending, &sweep_opts, |_, _| {})?;
        // Progress sequence numbers restart per run_sweep call; idle
        // beats continue a fresh local sequence. Either way the
        // supervisor counts at most one benign gap per generation.
        idle_seq = 0;
    }

    // Exit audit: count terminal failures over this shard's current
    // job view (the worker's exit code mirrors `dtexl sweep`).
    let journal_text = read_journal(&journal);
    let latest = latest_entries(&journal_text);
    let (specs, _) = spool.accepted_specs();
    report.failed = jobs_from_specs(&specs, &opts.pipeline)
        .into_iter()
        .filter(|job| {
            opts.sweep
                .shard
                .is_none_or(|shard| shard.contains(&job.key()))
        })
        .filter(|job| {
            latest
                .get(&job.key())
                .is_some_and(|e| e.status == "failed" && e.config_hash == Some(job.config_hash()))
        })
        .count();
    Ok(report)
}

// --- daemon (supervisor side) ----------------------------------------------

/// Knobs for [`run_daemon`].
#[derive(Debug, Clone)]
pub struct DaemonOptions {
    /// Fleet supervision knobs. `workdir` and `merged_journal` are
    /// overridden to live inside the spool (shard journals are spool
    /// state — that is what makes the daemon's resume exact).
    pub dispatch: DispatchOptions,
    /// Base pipeline configuration (threads, budgets) the daemon uses
    /// to compute job keys and config hashes. Must match what the
    /// worker arguments produce in the children.
    pub pipeline: dtexl_pipeline::PipelineConfig,
    /// Supervisor loop sleep between ticks.
    pub poll: Duration,
    /// Polled every tick; `true` requests a graceful drain (the CLI
    /// wires its SIGTERM/SIGINT flag here).
    pub shutdown: fn() -> bool,
}

impl Default for DaemonOptions {
    fn default() -> Self {
        Self {
            dispatch: DispatchOptions::default(),
            pipeline: dtexl_pipeline::PipelineConfig::default(),
            poll: Duration::from_millis(50),
            shutdown: || false,
        }
    }
}

/// End-of-daemon summary.
#[derive(Debug, Clone)]
pub struct DaemonReport {
    /// Per-shard supervision history.
    pub shards: Vec<ShardSummary>,
    /// Final live-merge statistics.
    pub merge: MergeStats,
    /// The divergence that poisoned the merge, when one was seen.
    pub merge_error: Option<String>,
    /// Jobs whose final merged record is `ok`/`skipped`.
    pub ok: usize,
    /// Jobs whose final merged record is `failed`.
    pub failed: usize,
    /// The failed jobs that were poison-quarantined, by key.
    pub poisoned: Vec<String>,
    /// Jobs with no merged record at all (a shard gave up).
    pub missing: Vec<String>,
    /// Batches accepted / dropped-as-duplicate / rejected-as-corrupt
    /// over the daemon's lifetime.
    pub batches: (u64, u64, u64),
    /// Status-file swaps performed.
    pub status_writes: u64,
}

impl DaemonReport {
    /// Process exit code, mirroring
    /// [`FleetReport::exit_code`](crate::dispatch::FleetReport::exit_code):
    /// 0 every job ok, 2 completed with failures, 1 supervision
    /// failure (gave-up shard, missing coverage, or a divergent
    /// merge).
    #[must_use]
    pub fn exit_code(&self) -> u8 {
        let gave_up = self
            .shards
            .iter()
            .any(|s| matches!(s.outcome, crate::dispatch::ShardOutcome::GaveUp));
        if gave_up || !self.missing.is_empty() || self.merge_error.is_some() {
            1
        } else if self.failed > 0 {
            2
        } else {
            0
        }
    }

    /// Multi-line human summary.
    #[must_use]
    pub fn summary(&self) -> String {
        use std::fmt::Write as _;
        let total = self.ok + self.failed + self.missing.len();
        let mut s = format!(
            "daemon: drained {}/{total} jobs ok, {} failed ({} poisoned), {} missing; \
             batches {} accepted / {} duplicate / {} rejected; {} status write(s)",
            self.ok,
            self.failed,
            self.poisoned.len(),
            self.missing.len(),
            self.batches.0,
            self.batches.1,
            self.batches.2,
            self.status_writes
        );
        if let Some(err) = &self.merge_error {
            let _ = write!(s, "\n  merge divergence: {err}");
        }
        for sh in &self.shards {
            let outcome = match &sh.outcome {
                crate::dispatch::ShardOutcome::Completed { code } => {
                    format!("completed (exit {code})")
                }
                crate::dispatch::ShardOutcome::GaveUp => "gave up".into(),
            };
            let _ = write!(
                s,
                "\n  shard {}: {outcome}, {} restart(s)",
                sh.shard, sh.restarts
            );
            for d in &sh.deaths {
                let _ = write!(s, "\n    death: {d}");
            }
        }
        s
    }
}

/// Journal a batch-level event (rejected or duplicate batch) into the
/// spool's events journal as a typed failed record, so `error_kind`
/// tooling sees queue-level faults exactly like job-level ones.
fn journal_batch_event(spool: &Spool, log: fn(&str), name: &str, error: JobError) {
    let record = JobRecord {
        index: 0,
        key: format!("batch:{name}"),
        status: JobStatus::Failed,
        attempts: 1,
        elapsed: Duration::ZERO,
        error: Some(error),
        metrics: None,
        config_hash: 0,
        peak_alloc: None,
        shard: None,
        obs: None,
    };
    if spool.append_event(&journal_line(&record)).is_err() {
        log(&format!(
            "daemon: could not journal batch event for {name} (events journal unwritable)"
        ));
    }
}

/// Run the sweep daemon over `spool` until drained.
///
/// `spec.jobs` may start empty (the classic CI flow starts the daemon
/// on an empty spool); `spec.sweep_args` must be the worker-mode
/// arguments (`sweep --spool <dir> …`) — the fleet appends the
/// per-shard `--shard/--journal/--resume/--progress-to` itself.
///
/// # Errors
///
/// Returns the underlying I/O error when the spool or workdir cannot
/// be written, a child cannot be spawned, or the merged journal
/// cannot be swapped.
pub fn run_daemon(
    spool: &Spool,
    spec: FleetSpec,
    opts: &DaemonOptions,
) -> std::io::Result<DaemonReport> {
    let mut dopts = opts.dispatch.clone();
    dopts.workdir = spool.root().to_path_buf();
    dopts.merged_journal = Some(spool.merged_journal());
    let log = dopts.log;

    let mut fleet = Fleet::new(spec, &dopts)?;
    let mut merger = LiveMerger::new(fleet.journals(), spool.merged_journal(), spool.canon_file());
    let metrics = DaemonMetrics::new();
    // Re-fold whatever the shard journals already contain: a restarted
    // daemon's merged view is rebuilt from the source of truth.
    if merger.tick()? {
        metrics.merge_swaps.inc();
    }

    let socket = StatusSocket::bind(spool);
    let mut batches = (0u64, 0u64, 0u64);
    let mut status_writes = 0u64;
    let mut last_body = String::new();
    let mut last_metrics = String::new();
    // Keys whose terminal wall-clock has been fed to the histogram; a
    // key is observed exactly once, as it first turns terminal.
    let mut clocked: BTreeSet<String> = BTreeSet::new();

    // Initial ingest: accepted batches from a previous daemon run.
    let (specs, _) = spool.accepted_specs();
    let known = fleet.extend_jobs(&jobs_from_specs(&specs, &opts.pipeline));
    if known > 0 {
        log(&format!("daemon: resumed spool with {known} known job(s)"));
    }

    loop {
        // Honor the shutdown hook by converting it into the durable
        // drain marker the workers watch.
        if (opts.shutdown)() && !spool.drain_requested() {
            log("daemon: shutdown requested; draining (finishing accepted work)");
            spool.request_drain()?;
        }
        let draining = spool.drain_requested();

        // Ingest new batches while the queue is open. Batches
        // submitted after the drain marker stay in incoming/ for the
        // next daemon run.
        if !draining {
            let accept = spool.accept_incoming();
            batches.0 += accept.accepted.len() as u64;
            batches.1 += accept.duplicates.len() as u64;
            batches.2 += accept.rejected.len() as u64;
            for name in &accept.duplicates {
                log(&format!("daemon: dropped duplicate batch {name}"));
                journal_batch_event(
                    spool,
                    log,
                    name,
                    JobError::DuplicateBatch {
                        batch: name.clone(),
                    },
                );
            }
            for (name, detail) in &accept.rejected {
                log(&format!("daemon: rejected corrupt batch {name}: {detail}"));
                journal_batch_event(
                    spool,
                    log,
                    name,
                    JobError::SpoolCorrupt {
                        path: name.clone(),
                        detail: detail.clone(),
                    },
                );
            }
            if !accept.accepted.is_empty() {
                let (specs, _) = spool.accepted_specs();
                let added = fleet.extend_jobs(&jobs_from_specs(&specs, &opts.pipeline));
                log(&format!(
                    "daemon: accepted {} batch(es), {added} new job(s), {} known total",
                    accept.accepted.len(),
                    fleet.key_info().len()
                ));
            }
        }

        // Size-capped events rotation. A failed rotation is advisory
        // (logged, retried next pass) — see `Spool::rotate_events`.
        if let Err(e) = spool.rotate_events(EVENTS_ROTATE_BYTES) {
            log(&format!("daemon: {e}"));
        }

        let settled = fleet.tick(&dopts)?;
        if !spool.drain_requested() {
            // A worker that exited while the queue is open is revived
            // (it only exits by itself when draining).
            fleet.revive_completed(&dopts);
        }
        if merger.tick()? {
            metrics.merge_swaps.inc();
        }

        let status = build_status(
            spool,
            &fleet,
            &merger,
            batches,
            status_writes.saturating_add(1),
        );
        let body = {
            let mut unsequenced = status.clone();
            unsequenced.seq = 0;
            unsequenced.to_json()
        };
        if body != last_body {
            atomic_write(&spool.status_file(), &status.to_json())?;
            status_writes += 1;
            last_body = body;
        }
        feed_metrics(&metrics, &status, status_writes);
        observe_wall_clocks(&metrics, &fleet, &merger, &mut clocked);
        let prom = metrics.render();
        if prom != last_metrics {
            atomic_write(&spool.metrics_file(), &prom)?;
            last_metrics = prom.clone();
        }
        socket.serve(&status, &prom);

        if spool.drain_requested() && settled {
            break;
        }
        // lint: allow(determinism-clock) -- supervisor tick pacing; no simulated metric depends on it
        std::thread::sleep(opts.poll);
    }

    // Terminal flush: final merge state, terminal status document and
    // a last metrics snapshot (scrapers read metrics.prom after the
    // daemon exits; the socket goes away with the process).
    if merger.tick()? {
        metrics.merge_swaps.inc();
    }
    let cov = audit_coverage(fleet.key_info().keys(), |k| merger.acc.get(k));
    let mut status = build_status(spool, &fleet, &merger, batches, status_writes + 1);
    status.alive = false;
    status.state = if cov.missing.is_empty() {
        "drained".into()
    } else {
        "stopped".into()
    };
    atomic_write(&spool.status_file(), &status.to_json())?;
    status_writes += 1;
    feed_metrics(&metrics, &status, status_writes);
    observe_wall_clocks(&metrics, &fleet, &merger, &mut clocked);
    atomic_write(&spool.metrics_file(), &metrics.render())?;
    socket.close(spool);

    let report = DaemonReport {
        shards: fleet.into_summaries(),
        merge: merger.acc.stats(),
        merge_error: merger.diverged,
        ok: cov.ok,
        failed: cov.failed,
        poisoned: cov.poisoned,
        missing: cov.missing,
        batches,
        status_writes,
    };
    log(&format!(
        "daemon: exiting: {} ok, {} failed, {} missing (exit {})",
        report.ok,
        report.failed,
        report.missing.len(),
        report.exit_code()
    ));
    Ok(report)
}

/// Snapshot the daemon's current state into a status document.
fn build_status(
    spool: &Spool,
    fleet: &Fleet,
    merger: &LiveMerger,
    batches: (u64, u64, u64),
    seq: u64,
) -> DaemonStatus {
    let views = fleet.views();
    let cov = audit_coverage(fleet.key_info().keys(), |k| merger.acc.get(k));
    let in_flight: Vec<String> = views.iter().flat_map(|v| v.in_flight.clone()).collect();
    let peak = views.iter().map(|v| v.peak_alloc_bytes).max().unwrap_or(0);
    let draining = spool.drain_requested();
    let queued = cov.missing.len() as u64;
    let state = if queued == 0 && in_flight.is_empty() {
        "drained"
    } else if draining {
        "draining"
    } else {
        "active"
    };
    DaemonStatus {
        state: state.into(),
        alive: true,
        pid: std::process::id(),
        seq,
        draining,
        submitted_jobs: fleet.key_info().len() as u64,
        queued,
        ok: cov.ok as u64,
        failed: cov.failed as u64,
        poisoned: cov.poisoned.len() as u64,
        batches_accepted: batches.0,
        batches_duplicate: batches.1,
        batches_rejected: batches.2,
        peak_alloc_bytes: peak,
        in_flight,
        shards: views.into_iter().map(shard_status).collect(),
    }
}

/// Feed the metrics registry from a freshly-built status snapshot.
/// Counters whose source is an absolute total (batch counts, journal
/// coverage, cumulative death lists) go through `record_total`, so
/// the exposed values stay monotone even when the source dips.
fn feed_metrics(metrics: &DaemonMetrics, status: &DaemonStatus, status_writes: u64) {
    metrics
        .batches_accepted
        .record_total(status.batches_accepted);
    metrics
        .batches_duplicate
        .record_total(status.batches_duplicate);
    metrics
        .batches_rejected
        .record_total(status.batches_rejected);
    metrics.jobs_submitted.set(status.submitted_jobs);
    metrics.queue_depth.set(status.queued);
    metrics.jobs_in_flight.set(status.in_flight.len() as u64);
    metrics.jobs_ok.record_total(status.ok);
    metrics.jobs_failed.record_total(status.failed);
    metrics.jobs_poisoned.record_total(status.poisoned);
    metrics.peak_alloc_bytes.set(status.peak_alloc_bytes);
    metrics.status_writes.record_total(status_writes);
    let mut by_cause = [0u64; RESTART_CAUSES.len()];
    for shard in &status.shards {
        for death in &shard.deaths {
            let cause = death.split(" (").next().unwrap_or(death);
            let idx = RESTART_CAUSES
                .iter()
                .position(|c| *c == cause)
                .unwrap_or(RESTART_CAUSES.len() - 1);
            by_cause[idx] += 1;
        }
    }
    for (i, cause) in RESTART_CAUSES.iter().enumerate() {
        metrics.record_restart_total(cause, by_cause[i]);
    }
}

/// Observe each job's wall clock exactly once, as its merged record
/// first turns terminal. Resume-skips are not observed (their elapsed
/// is the skip cost, not a job run).
fn observe_wall_clocks(
    metrics: &DaemonMetrics,
    fleet: &Fleet,
    merger: &LiveMerger,
    clocked: &mut BTreeSet<String>,
) {
    for key in fleet.key_info().keys() {
        if clocked.contains(key) {
            continue;
        }
        if let Some(entry) = merger.acc.get(key) {
            if entry.status == "ok" || entry.status == "failed" {
                metrics.job_wall_clock.observe_ms(entry.elapsed_ms);
                clocked.insert(key.clone());
            }
        }
    }
}

/// Convert a fleet shard view into its status-document row.
fn shard_status(view: ShardView) -> ShardStatus {
    ShardStatus {
        index: view.index,
        phase: view.phase.to_string(),
        pid: view.pid,
        restarts: view.restarts,
        backoff_ms: view.backoff_ms,
        peak_alloc_bytes: view.peak_alloc_bytes,
        deaths: view.deaths,
        in_flight: view.in_flight,
    }
}

// --- status socket ---------------------------------------------------------

/// A nonblocking unix socket speaking a one-line request protocol: a
/// client that sends `metrics\n` gets the Prometheus text exposition;
/// anything else — including the classic client that sends nothing
/// and just reads — gets the current status document (one line, then
/// EOF), the same bytes as `status.json` without the file-polling
/// latency. Best-effort everywhere: a platform or filesystem that
/// cannot host the socket degrades to the file, never to an error.
#[cfg(unix)]
struct StatusSocket {
    listener: Option<std::os::unix::net::UnixListener>,
}

#[cfg(unix)]
impl StatusSocket {
    fn bind(spool: &Spool) -> Self {
        let path = spool.socket_path();
        // A stale socket from a crashed daemon blocks bind; remove it.
        let _ = std::fs::remove_file(&path);
        let listener = std::os::unix::net::UnixListener::bind(&path)
            .and_then(|l| l.set_nonblocking(true).map(|()| l))
            .ok();
        Self { listener }
    }

    fn serve(&self, status: &DaemonStatus, metrics: &str) {
        use std::io::{Read as _, Write as _};
        let Some(listener) = &self.listener else {
            return;
        };
        // Answer everything queued this tick; WouldBlock means idle.
        while let Ok((mut conn, _)) = listener.accept() {
            // Accepted sockets are blocking even off a nonblocking
            // listener; a short read timeout keeps a silent client
            // (the plain status poller) from stalling the daemon.
            let _ = conn.set_read_timeout(Some(Duration::from_millis(50)));
            let mut buf = [0u8; 64];
            // One read is enough: the only request is the 8-byte
            // `metrics\n`, which arrives in a single segment. No
            // bytes, EOF or a timeout all mean "status".
            let request = match conn.read(&mut buf) {
                Ok(n) => std::str::from_utf8(&buf[..n]).unwrap_or(""),
                Err(_) => "",
            };
            if request.trim() == "metrics" {
                let _ = conn.write_all(metrics.as_bytes());
            } else {
                let _ = writeln!(conn, "{}", status.to_json());
            }
        }
    }

    fn close(&self, spool: &Spool) {
        if self.listener.is_some() {
            let _ = std::fs::remove_file(spool.socket_path());
        }
    }
}

/// Non-unix stand-in: the status file is the only endpoint.
#[cfg(not(unix))]
struct StatusSocket;

#[cfg(not(unix))]
impl StatusSocket {
    fn bind(_spool: &Spool) -> Self {
        Self
    }
    fn serve(&self, _status: &DaemonStatus, _metrics: &str) {}
    fn close(&self, _spool: &Spool) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spool::JobSpec;
    use std::path::Path;

    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("dtexl_daemon_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn sample_status() -> DaemonStatus {
        DaemonStatus {
            state: "active".into(),
            alive: true,
            pid: 4242,
            seq: 17,
            draining: false,
            submitted_jobs: 20,
            queued: 3,
            ok: 15,
            failed: 2,
            poisoned: 1,
            batches_accepted: 4,
            batches_duplicate: 1,
            batches_rejected: 2,
            peak_alloc_bytes: 9_000_000,
            in_flight: vec![
                "CCS|CG-square/Hilbert/flp2|480x192#0".into(),
                "GTr|baseline|480x192#0".into(),
            ],
            shards: vec![
                ShardStatus {
                    index: 0,
                    phase: "healthy".into(),
                    pid: Some(777),
                    restarts: 1,
                    backoff_ms: 0,
                    peak_alloc_bytes: 9_000_000,
                    deaths: vec!["wedged (no progress events for 5000ms)".into()],
                    in_flight: vec!["CCS|CG-square/Hilbert/flp2|480x192#0".into()],
                },
                ShardStatus {
                    index: 1,
                    phase: "pending".into(),
                    pid: None,
                    restarts: 2,
                    backoff_ms: 350,
                    peak_alloc_bytes: 0,
                    deaths: vec![
                        "crashed (exit code 101)".into(),
                        "oom-killed (rss 900 bytes > limit 512 (polled))".into(),
                    ],
                    in_flight: Vec::new(),
                },
            ],
        }
    }

    #[test]
    fn status_document_round_trips_field_by_field() {
        let status = sample_status();
        let parsed = DaemonStatus::parse(&status.to_json()).expect("parse own rendering");
        // Field-by-field, so a regression names the exact field.
        assert_eq!(parsed.state, status.state);
        assert_eq!(parsed.alive, status.alive);
        assert_eq!(parsed.pid, status.pid);
        assert_eq!(parsed.seq, status.seq);
        assert_eq!(parsed.draining, status.draining);
        assert_eq!(parsed.submitted_jobs, status.submitted_jobs);
        assert_eq!(parsed.queued, status.queued);
        assert_eq!(parsed.ok, status.ok);
        assert_eq!(parsed.failed, status.failed);
        assert_eq!(parsed.poisoned, status.poisoned);
        assert_eq!(parsed.batches_accepted, status.batches_accepted);
        assert_eq!(parsed.batches_duplicate, status.batches_duplicate);
        assert_eq!(parsed.batches_rejected, status.batches_rejected);
        assert_eq!(parsed.peak_alloc_bytes, status.peak_alloc_bytes);
        assert_eq!(parsed.in_flight, status.in_flight);
        assert_eq!(parsed.shards.len(), status.shards.len());
        for (p, s) in parsed.shards.iter().zip(&status.shards) {
            assert_eq!(p.index, s.index);
            assert_eq!(p.phase, s.phase);
            assert_eq!(p.pid, s.pid);
            assert_eq!(p.restarts, s.restarts);
            assert_eq!(p.backoff_ms, s.backoff_ms);
            assert_eq!(p.peak_alloc_bytes, s.peak_alloc_bytes);
            assert_eq!(p.deaths, s.deaths);
            assert_eq!(p.in_flight, s.in_flight);
        }
        // And the composite equality, in case a field is added without
        // extending the list above.
        assert_eq!(parsed, status);
    }

    #[test]
    fn feed_metrics_maps_status_fields_and_death_causes() {
        let metrics = DaemonMetrics::new();
        feed_metrics(&metrics, &sample_status(), 6);
        let text = metrics.render();
        assert!(text.contains("dtexl_batches_accepted_total 4"));
        assert!(text.contains("dtexl_jobs_submitted 20"));
        assert!(text.contains("dtexl_queue_depth 3"));
        assert!(text.contains("dtexl_jobs_in_flight 2"));
        assert!(text.contains("dtexl_jobs_ok_total 15"));
        assert!(text.contains("dtexl_jobs_failed_total 2"));
        assert!(text.contains("dtexl_jobs_poisoned_total 1"));
        assert!(text.contains("dtexl_status_writes_total 6"));
        assert!(text.contains("dtexl_peak_alloc_bytes 9000000"));
        // Death strings parse to their cause prefix.
        assert!(text.contains("dtexl_shard_restarts_total{cause=\"wedged\"} 1"));
        assert!(text.contains("dtexl_shard_restarts_total{cause=\"crashed\"} 1"));
        assert!(text.contains("dtexl_shard_restarts_total{cause=\"oom-killed\"} 1"));
        assert!(text.contains("dtexl_shard_restarts_total{cause=\"other\"} 0"));

        // Re-feeding a shrunken snapshot never lowers a counter.
        let mut dipped = sample_status();
        dipped.ok = 9;
        feed_metrics(&metrics, &dipped, 6);
        assert!(metrics.render().contains("dtexl_jobs_ok_total 15"));
    }

    #[test]
    fn status_parse_tolerates_garbage_and_truncation() {
        assert!(DaemonStatus::parse("").is_none());
        assert!(DaemonStatus::parse("not json").is_none());
        let full = sample_status().to_json();
        // A reader racing the writer sees either old or new bytes —
        // but a truncated read (non-atomic writer) must parse as None,
        // not panic.
        assert!(DaemonStatus::parse(&full[..full.len() / 2]).is_none());
    }

    #[test]
    fn empty_arrays_round_trip() {
        let mut status = sample_status();
        status.in_flight.clear();
        status.shards.clear();
        let parsed = DaemonStatus::parse(&status.to_json()).expect("parse");
        assert_eq!(parsed, status);
    }

    fn tiny_job(game: &str, schedule: &str) -> JobSpec {
        JobSpec::new(game, schedule, 64, 32, 0, false).expect("valid spec")
    }

    /// End-to-end in-process drain: submit → accept → worker runs the
    /// queue dry → drain marker → worker exits; then verify the
    /// journal covers every job.
    #[test]
    fn spool_worker_drains_a_live_queue() {
        let root = scratch("worker");
        let spool = Spool::open(&root).expect("open spool");
        spool
            .submit(&[tiny_job("GTr", "baseline"), tiny_job("GTr", "dtexl")])
            .expect("submit");
        let accept = spool.accept_incoming();
        assert_eq!(accept.accepted.len(), 1);
        // Drain is pre-requested: the worker runs everything accepted,
        // then exits instead of idling.
        spool.request_drain().expect("drain marker");

        let mut wopts = WorkerOptions {
            poll: Duration::from_millis(1),
            ..WorkerOptions::default()
        };
        wopts.pipeline.threads = 1;
        wopts.sweep.journal = Some(root.join("shard-0.jsonl"));
        wopts.sweep.workers = 1;
        let report = run_spool_worker(&spool, &wopts).expect("worker runs");
        assert_eq!(report.generations, 1);
        assert_eq!(report.jobs_run, 2);
        assert_eq!(report.failed, 0);
        assert_eq!(report.exit_code(), 0);

        // A second worker pass over the same spool finds nothing to do
        // (terminal records at the same config hash) and exits
        // immediately.
        let again = run_spool_worker(&spool, &wopts).expect("worker reruns");
        assert_eq!(again.generations, 0);
        assert_eq!(again.jobs_run, 0);
        let _ = std::fs::remove_dir_all(&root);
    }

    /// The crash-exactness contract: a merged view rebuilt from byte 0
    /// of the shard journals (what a restarted daemon does) is
    /// bit-identical to the one maintained incrementally (what the
    /// live daemon does), including the canon view.
    #[test]
    fn merger_restart_is_bit_identical_to_incremental() {
        use std::io::Write as _;
        let root = scratch("merger");
        std::fs::create_dir_all(&root).expect("mkdir");
        let j0 = root.join("shard-0.jsonl");
        let j1 = root.join("shard-1.jsonl");
        let line = |key: &str, hash: u64, c: u64| {
            format!(
                "{{\"key\":\"{key}\",\"status\":\"ok\",\"attempts\":1,\"elapsed_ms\":1,\
                 \"config_hash\":\"{hash:016x}\",\"coupled_cycles\":{c},\
                 \"decoupled_cycles\":2,\"l2_accesses\":3}}"
            )
        };

        // Incremental daemon: lines arrive across ticks, some torn.
        let mut live = LiveMerger::new(
            vec![j0.clone(), j1.clone()],
            root.join("live.jsonl"),
            root.join("live.canon"),
        );
        let mut f0 = std::fs::File::create(&j0).expect("create j0");
        writeln!(f0, "{}", line("a", 1, 10)).expect("write");
        f0.flush().expect("flush");
        live.tick().expect("tick 1");
        let mut f1 = std::fs::File::create(&j1).expect("create j1");
        // Tear a write mid-line across two ticks.
        let l = line("b", 2, 20);
        let (head, tail) = l.split_at(l.len() / 2);
        write!(f1, "{head}").expect("write head");
        f1.flush().expect("flush");
        live.tick().expect("tick 2");
        writeln!(f1, "{tail}").expect("write tail");
        // A re-run of `a` (same hash, same metrics: allowed) lands too.
        writeln!(f0, "{}", line("a", 1, 10)).expect("rewrite a");
        f0.flush().expect("flush");
        f1.flush().expect("flush");
        live.tick().expect("tick 3");
        assert!(live.diverged.is_none());

        // Restarted daemon: a fresh merger folds the same journals
        // from byte 0 in one pass.
        let mut rebuilt = LiveMerger::new(
            vec![j0.clone(), j1.clone()],
            root.join("rebuilt.jsonl"),
            root.join("rebuilt.canon"),
        );
        rebuilt.tick().expect("rebuild tick");

        let read = |p: &Path| std::fs::read_to_string(p).expect("read");
        assert_eq!(
            read(&root.join("live.jsonl")),
            read(&root.join("rebuilt.jsonl")),
            "merged journal must be a pure function of the shard journals"
        );
        assert_eq!(
            read(&root.join("live.canon")),
            read(&root.join("rebuilt.canon")),
            "canon view must be too"
        );
        assert!(!read(&root.join("live.canon")).is_empty());
        let _ = std::fs::remove_dir_all(&root);
    }

    /// Divergent records must not stall the rest of the merge, and the
    /// first divergence is reported.
    #[test]
    fn merger_reports_divergence_without_stalling() {
        use std::io::Write as _;
        let root = scratch("diverge");
        std::fs::create_dir_all(&root).expect("mkdir");
        let j0 = root.join("shard-0.jsonl");
        let mut f = std::fs::File::create(&j0).expect("create");
        let line = |key: &str, c: u64| {
            format!(
                "{{\"key\":\"{key}\",\"status\":\"ok\",\"attempts\":1,\"elapsed_ms\":1,\
                 \"config_hash\":\"000000000000002a\",\"coupled_cycles\":{c},\
                 \"decoupled_cycles\":2,\"l2_accesses\":3}}"
            )
        };
        writeln!(f, "{}", line("a", 10)).expect("write");
        writeln!(f, "{}", line("a", 99)).expect("write divergent");
        writeln!(f, "{}", line("b", 20)).expect("write unrelated key");
        f.flush().expect("flush");
        let mut live = LiveMerger::new(vec![j0], root.join("m.jsonl"), root.join("m.canon"));
        live.tick().expect("tick");
        assert!(live
            .diverged
            .as_deref()
            .is_some_and(|d| d.contains("divergent")));
        let canon = std::fs::read_to_string(root.join("m.canon")).expect("canon");
        assert!(canon.lines().any(|l| l.starts_with("b|")), "b still merged");
        let _ = std::fs::remove_dir_all(&root);
    }
}
