//! Durable, journal-backed job queue for daemon-mode sweeps.
//!
//! A **spool** is a directory that decouples job *submission* from
//! job *execution*: `dtexl sweep submit` appends batches while a
//! long-running `dtexl sweep daemon` (and its shard workers) drains
//! them. The layout, all under one root:
//!
//! ```text
//! spool/
//!   incoming/batch-<hash16>.jsonl   submitted, not yet accepted
//!   accepted/batch-<hash16>.jsonl   ingested; workers scan these
//!   shard-<i>.jsonl                 per-shard journals (workers append)
//!   merged.jsonl                    live merged journal (atomic swap)
//!   merged.canon                    live canon view of merged.jsonl
//!   status.json                     atomically-swapped status document
//!   status.sock                     unix socket speaking status.json
//!   metrics.prom                    Prometheus text-format metrics (atomic swap)
//!   events.jsonl                    batch-level events (rejects, dups)
//!   events.1.jsonl                  previous events generation (size-capped rotation)
//!   drain                           marker: finish the queue and exit
//! ```
//!
//! Batches are **content-addressed**: a batch file's name is the
//! FNV-1a hash of its canonicalized content (lines sorted and
//! deduplicated), so resubmitting the same job set is a typed no-op
//! ([`JobError::DuplicateBatch`]) and at-least-once submitters are
//! safe. Writes are atomic (write to a `.tmp-<pid>` sibling, then
//! rename), so a reader never observes a half-written batch; any
//! non-temp file that still fails to parse is quarantined with a
//! typed [`JobError::SpoolCorrupt`] event — counted, journaled,
//! never a crash.
//!
//! Job-level dedup against already-completed work is *not* the
//! spool's job: every job key maps to a stable shard
//! ([`shard_of`](crate::sweep::shard_of)), and that shard's journal
//! already records the completed config hashes — the worker's resume
//! filter skips them for free. The spool only dedups *batches*.

use crate::sweep::{field_str, field_u64, fnv1a, json_escape, JobError, SweepJob};
use dtexl_pipeline::PipelineConfig;
use dtexl_scene::Game;
use dtexl_sched::ScheduleConfig;
use std::collections::BTreeSet;
use std::io;
use std::path::{Path, PathBuf};

/// One submitted job: the wire form of a [`SweepJob`] without the
/// hardware config (the daemon applies its own `--threads` etc.; the
/// `upper` flag is the only pipeline axis a submitter chooses, as in
/// `dtexl sweep --upper`).
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// Resolved benchmark (parsed from its paper alias, e.g. `"CCS"`).
    pub game: Game,
    /// Resolved schedule under test.
    pub schedule: ScheduleConfig,
    /// The schedule's submitted wire name (`"baseline"`, `"dtexl"`,
    /// `"HLB-flp2"`, …) — kept alongside the resolved config so the
    /// spec re-serializes to the exact line it was parsed from.
    pub schedule_name: String,
    /// Screen width in pixels (non-zero).
    pub width: u32,
    /// Screen height in pixels (non-zero).
    pub height: u32,
    /// Animation frame index.
    pub frame: u32,
    /// Upper-bound (infinite-L1) pipeline mode.
    pub upper: bool,
}

impl JobSpec {
    /// Build a spec from parts, resolving the game alias and schedule
    /// name.
    ///
    /// # Errors
    ///
    /// A message naming the unknown alias / schedule or the zero
    /// dimension.
    pub fn new(
        game_alias: &str,
        schedule_name: &str,
        width: u32,
        height: u32,
        frame: u32,
        upper: bool,
    ) -> Result<Self, String> {
        let game = Game::ALL
            .into_iter()
            .find(|g| g.alias().eq_ignore_ascii_case(game_alias))
            .ok_or_else(|| format!("unknown game '{game_alias}'"))?;
        let schedule: ScheduleConfig = schedule_name
            .parse()
            .map_err(|e| format!("bad schedule '{schedule_name}': {e}"))?;
        if width == 0 || height == 0 {
            return Err("resolution must be non-zero".into());
        }
        Ok(Self {
            game,
            schedule,
            schedule_name: schedule_name.trim().to_string(),
            width,
            height,
            frame,
            upper,
        })
    }

    /// Render the spec as one batch-file line (single-line JSON).
    #[must_use]
    pub fn to_line(&self) -> String {
        format!(
            "{{\"game\":\"{}\",\"schedule\":\"{}\",\"width\":{},\"height\":{},\"frame\":{},\"upper\":{}}}",
            self.game.alias(),
            json_escape(&self.schedule_name),
            self.width,
            self.height,
            self.frame,
            self.upper
        )
    }

    /// Parse one batch-file line; `None` for blank, truncated,
    /// corrupt or unresolvable lines (unknown game / schedule, zero
    /// dimensions).
    #[must_use]
    pub fn parse_line(line: &str) -> Option<Self> {
        let line = line.trim();
        if line.is_empty() || !line.starts_with('{') || !line.ends_with('}') {
            return None;
        }
        let game = field_str(line, "game")?;
        let schedule = field_str(line, "schedule")?;
        let width = u32::try_from(field_u64(line, "width")?).ok()?;
        let height = u32::try_from(field_u64(line, "height")?).ok()?;
        let frame = u32::try_from(field_u64(line, "frame")?).ok()?;
        let upper = field_bool(line, "upper").unwrap_or_default();
        Self::new(&game, &schedule, width, height, frame, upper).ok()
    }

    /// Materialize the spec into a runnable [`SweepJob`] under the
    /// daemon's base pipeline configuration.
    #[must_use]
    pub fn to_job(&self, pipeline_base: &PipelineConfig) -> SweepJob {
        SweepJob {
            game: self.game,
            schedule: self.schedule,
            width: self.width,
            height: self.height,
            frame: self.frame,
            pipeline: PipelineConfig {
                upper_bound: self.upper,
                ..*pipeline_base
            },
        }
    }
}

/// Extract a boolean field from a single-line JSON object (shared
/// with the daemon's status-document parser, the other hand-rolled
/// format with boolean fields).
pub(crate) fn field_bool(line: &str, field: &str) -> Option<bool> {
    let tag = format!("\"{field}\":");
    let start = line.find(&tag)? + tag.len();
    let rest = &line[start..];
    if rest.starts_with("true") {
        Some(true)
    } else if rest.starts_with("false") {
        Some(false)
    } else {
        None
    }
}

/// Materialize a spec list into a job list, dropping jobs whose key a
/// previous spec already produced (two batches may both carry a job;
/// the first occurrence wins — both would simulate identically
/// anyway, the dedup just keeps the canonical job list and queue
/// depth honest).
#[must_use]
pub fn jobs_from_specs(specs: &[JobSpec], pipeline_base: &PipelineConfig) -> Vec<SweepJob> {
    let mut seen = BTreeSet::new();
    let mut jobs = Vec::with_capacity(specs.len());
    for spec in specs {
        let job = spec.to_job(pipeline_base);
        if seen.insert(job.key()) {
            jobs.push(job);
        }
    }
    jobs
}

/// Write `contents` to `path` atomically: write a `.tmp-<pid>`
/// sibling, flush, then rename over the target. Readers see either
/// the old file or the new one, never a torn write.
pub(crate) fn atomic_write(path: &Path, contents: &str) -> io::Result<()> {
    let tmp = sibling_tmp(path);
    std::fs::write(&tmp, contents)?;
    let renamed = std::fs::rename(&tmp, path);
    if renamed.is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
    renamed
}

/// The `.tmp-<pid>` sibling used for atomic writes; spool scans skip
/// anything with a `.tmp-` extension segment.
fn sibling_tmp(path: &Path) -> PathBuf {
    let mut name = path.file_name().unwrap_or_default().to_os_string();
    name.push(format!(".tmp-{}", std::process::id()));
    path.with_file_name(name)
}

/// Whether a directory entry is an in-progress atomic write (skipped
/// by every scan).
fn is_tmp(name: &str) -> bool {
    name.contains(".tmp-")
}

/// Receipt from a successful [`Spool::submit`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SubmitReceipt {
    /// The batch id (16-hex content hash).
    pub batch: String,
    /// Jobs in the canonicalized batch (after line dedup).
    pub jobs: usize,
    /// Where the batch file landed.
    pub path: PathBuf,
}

/// What one [`Spool::accept_incoming`] pass did.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AcceptReport {
    /// Batch ids moved `incoming/` → `accepted/` this pass.
    pub accepted: Vec<String>,
    /// Incoming file names dropped because their content hash matched
    /// an already-accepted batch.
    pub duplicates: Vec<String>,
    /// Incoming file names quarantined as corrupt, with the reason.
    pub rejected: Vec<(String, String)>,
}

/// Handle to a spool directory (see the module docs for the layout).
#[derive(Debug, Clone)]
pub struct Spool {
    root: PathBuf,
}

impl Spool {
    /// Open (creating if needed) the spool at `root`.
    ///
    /// # Errors
    ///
    /// The underlying I/O error when the directories cannot be
    /// created.
    pub fn open(root: impl Into<PathBuf>) -> io::Result<Self> {
        let spool = Self { root: root.into() };
        std::fs::create_dir_all(spool.incoming_dir())?;
        std::fs::create_dir_all(spool.accepted_dir())?;
        Ok(spool)
    }

    /// The spool root directory.
    #[must_use]
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Where submitted batches land.
    #[must_use]
    pub fn incoming_dir(&self) -> PathBuf {
        self.root.join("incoming")
    }

    /// Where accepted batches live (workers scan this).
    #[must_use]
    pub fn accepted_dir(&self) -> PathBuf {
        self.root.join("accepted")
    }

    /// Shard `i`'s journal (matches the fleet supervisor's layout).
    #[must_use]
    pub fn shard_journal(&self, index: u32) -> PathBuf {
        self.root.join(format!("shard-{index}.jsonl"))
    }

    /// The live merged journal.
    #[must_use]
    pub fn merged_journal(&self) -> PathBuf {
        self.root.join("merged.jsonl")
    }

    /// The live canon view of the merged journal.
    #[must_use]
    pub fn canon_file(&self) -> PathBuf {
        self.root.join("merged.canon")
    }

    /// The atomically-swapped status document.
    #[must_use]
    pub fn status_file(&self) -> PathBuf {
        self.root.join("status.json")
    }

    /// The unix status socket (when the platform supports one).
    #[must_use]
    pub fn socket_path(&self) -> PathBuf {
        self.root.join("status.sock")
    }

    /// The batch-level events journal (duplicate / corrupt batches,
    /// journaled with `error_kind` like any job failure).
    #[must_use]
    pub fn events_journal(&self) -> PathBuf {
        self.root.join("events.jsonl")
    }

    /// The previous events generation, produced by
    /// [`Spool::rotate_events`] when the live journal crosses the
    /// size cap. Exactly two generations are kept: rotating again
    /// replaces this file.
    #[must_use]
    pub fn rotated_events_journal(&self) -> PathBuf {
        self.root.join("events.1.jsonl")
    }

    /// The atomically-swapped Prometheus text-format metrics document
    /// (see [`crate::registry`]).
    #[must_use]
    pub fn metrics_file(&self) -> PathBuf {
        self.root.join("metrics.prom")
    }

    /// The drain marker: present means "stop accepting, finish the
    /// accepted queue, exit".
    #[must_use]
    pub fn drain_marker(&self) -> PathBuf {
        self.root.join("drain")
    }

    /// Whether a drain has been requested.
    #[must_use]
    pub fn drain_requested(&self) -> bool {
        self.drain_marker().exists()
    }

    /// Request a drain (idempotent).
    ///
    /// # Errors
    ///
    /// The underlying I/O error when the marker cannot be written.
    pub fn request_drain(&self) -> io::Result<()> {
        std::fs::write(self.drain_marker(), "drain\n")
    }

    /// Submit a batch: canonicalize the specs (lines sorted,
    /// duplicates dropped), content-hash them into a batch id, and
    /// atomically write `incoming/batch-<id>.jsonl`.
    ///
    /// # Errors
    ///
    /// [`JobError::DuplicateBatch`] when a batch with the same
    /// canonical content is already incoming or accepted;
    /// [`JobError::SpoolCorrupt`] when the spool directory itself is
    /// unwritable (the queue cannot take work).
    pub fn submit(&self, specs: &[JobSpec]) -> Result<SubmitReceipt, JobError> {
        if specs.is_empty() {
            return Err(JobError::SpoolCorrupt {
                path: self.incoming_dir().display().to_string(),
                detail: "refusing to submit an empty batch".into(),
            });
        }
        let mut lines: Vec<String> = specs.iter().map(JobSpec::to_line).collect();
        lines.sort();
        lines.dedup();
        let content = lines.join("\n") + "\n";
        let batch = format!("{:016x}", fnv1a(content.as_bytes()));
        let name = format!("batch-{batch}.jsonl");
        let target = self.incoming_dir().join(&name);
        if target.exists() || self.accepted_dir().join(&name).exists() {
            return Err(JobError::DuplicateBatch { batch });
        }
        atomic_write(&target, &content).map_err(|e| JobError::SpoolCorrupt {
            path: target.display().to_string(),
            detail: format!("cannot write batch: {e}"),
        })?;
        Ok(SubmitReceipt {
            batch,
            jobs: lines.len(),
            path: target,
        })
    }

    /// Sorted non-temp file names in `dir` (missing dir = empty).
    fn scan_dir(dir: &Path) -> Vec<String> {
        let Ok(entries) = std::fs::read_dir(dir) else {
            return Vec::new();
        };
        let mut names: Vec<String> = entries
            .filter_map(Result::ok)
            .filter_map(|e| e.file_name().into_string().ok())
            .filter(|n| !is_tmp(n) && !n.ends_with(".rejected"))
            .collect();
        names.sort();
        names
    }

    /// Parse one batch file's content into specs; `Err` names the
    /// first offending line.
    fn parse_batch(content: &str) -> Result<Vec<JobSpec>, String> {
        let mut specs = Vec::new();
        for (i, line) in content.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            match JobSpec::parse_line(line) {
                Some(spec) => specs.push(spec),
                None => return Err(format!("line {} does not parse as a job spec", i + 1)),
            }
        }
        if specs.is_empty() {
            return Err("batch contains no job specs".into());
        }
        Ok(specs)
    }

    /// Daemon-side ingest pass: validate every complete file in
    /// `incoming/` and move it to `accepted/` under its canonical
    /// content-hash name. Duplicates of already-accepted batches are
    /// dropped; unreadable or unparseable files are renamed to
    /// `<name>.rejected` (so one bad submitter cannot wedge the scan)
    /// — both are reported, neither is an error: a corrupt batch must
    /// never crash the daemon.
    #[must_use]
    pub fn accept_incoming(&self) -> AcceptReport {
        let mut report = AcceptReport::default();
        let incoming = self.incoming_dir();
        for name in Self::scan_dir(&incoming) {
            let path = incoming.join(&name);
            let reject = |detail: String, report: &mut AcceptReport| {
                let _ = std::fs::rename(&path, incoming.join(format!("{name}.rejected")));
                report.rejected.push((name.clone(), detail));
            };
            let content = match std::fs::read_to_string(&path) {
                Ok(c) => c,
                Err(e) => {
                    reject(format!("unreadable: {e}"), &mut report);
                    continue;
                }
            };
            let specs = match Self::parse_batch(&content) {
                Ok(s) => s,
                Err(detail) => {
                    reject(detail, &mut report);
                    continue;
                }
            };
            // Re-canonicalize: accept under the *content's* hash even
            // if a foreign writer picked a different file name.
            let mut lines: Vec<String> = specs.iter().map(JobSpec::to_line).collect();
            lines.sort();
            lines.dedup();
            let content = lines.join("\n") + "\n";
            let batch = format!("{:016x}", fnv1a(content.as_bytes()));
            let target = self.accepted_dir().join(format!("batch-{batch}.jsonl"));
            if target.exists() {
                let _ = std::fs::remove_file(&path);
                report.duplicates.push(name.clone());
                continue;
            }
            if let Err(e) = atomic_write(&target, &content) {
                reject(format!("cannot accept: {e}"), &mut report);
                continue;
            }
            let _ = std::fs::remove_file(&path);
            report.accepted.push(batch);
        }
        report
    }

    /// Worker-side scan: every spec in every accepted batch, in
    /// batch-name order then line order, plus the number of accepted
    /// files skipped as unreadable/unparseable (a file the daemon
    /// accepted should always parse; tolerance is cheap insurance).
    #[must_use]
    pub fn accepted_specs(&self) -> (Vec<JobSpec>, u64) {
        let accepted = self.accepted_dir();
        let mut specs = Vec::new();
        let mut corrupt = 0u64;
        for name in Self::scan_dir(&accepted) {
            let path = accepted.join(&name);
            match std::fs::read_to_string(&path).map_err(|e| e.to_string()) {
                Ok(content) => match Self::parse_batch(&content) {
                    Ok(batch) => specs.extend(batch),
                    Err(_) => corrupt += 1,
                },
                Err(_) => corrupt += 1,
            }
        }
        (specs, corrupt)
    }

    /// Append one record to the batch-level events journal.
    ///
    /// # Errors
    ///
    /// The underlying I/O error when the journal cannot be appended.
    pub fn append_event(&self, line: &str) -> io::Result<()> {
        use std::io::Write as _;
        let mut file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(self.events_journal())?;
        writeln!(file, "{line}")?;
        file.flush()
    }

    /// Rotate the events journal when it has grown past `cap_bytes`:
    /// `events.jsonl` is renamed over `events.1.jsonl` (replacing the
    /// previous generation — exactly two generations are kept) and a
    /// fresh journal starts on the next [`Spool::append_event`].
    /// Returns whether a rotation happened.
    ///
    /// # Errors
    ///
    /// [`RotateError`] when the size probe or the rename fails. The
    /// error is advisory: the caller keeps appending to the (now
    /// oversized) live journal and retries next pass — a full disk or
    /// a permissions hiccup must never take the daemon down.
    pub fn rotate_events(&self, cap_bytes: u64) -> Result<bool, RotateError> {
        let live = self.events_journal();
        let len = match std::fs::metadata(&live) {
            Ok(meta) => meta.len(),
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(false),
            Err(e) => {
                return Err(RotateError {
                    path: live.display().to_string(),
                    detail: format!("cannot stat events journal: {e}"),
                })
            }
        };
        if len < cap_bytes {
            return Ok(false);
        }
        std::fs::rename(&live, self.rotated_events_journal()).map_err(|e| RotateError {
            path: live.display().to_string(),
            detail: format!("cannot rotate events journal: {e}"),
        })?;
        Ok(true)
    }
}

/// Default size cap for [`Spool::rotate_events`]: once the live
/// `events.jsonl` crosses this, the daemon rotates it at the next
/// loop pass.
pub const EVENTS_ROTATE_BYTES: u64 = 1 << 20;

/// Typed, non-fatal failure from [`Spool::rotate_events`]. Carries
/// the journal path and the underlying I/O detail; the daemon logs it
/// and keeps running (the live journal just grows past the cap until
/// a later pass succeeds).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RotateError {
    /// The events journal that failed to rotate.
    pub path: String,
    /// What went wrong (stat or rename failure detail).
    pub detail: String,
}

impl std::fmt::Display for RotateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "events rotation failed for {}: {}",
            self.path, self.detail
        )
    }
}

impl std::error::Error for RotateError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("dtexl_spool_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn spec(game: &str, schedule: &str) -> JobSpec {
        JobSpec::new(game, schedule, 96, 64, 0, false).unwrap()
    }

    #[test]
    fn job_spec_round_trips_through_its_line_form() {
        let s = JobSpec::new("ccs", "dtexl", 480, 192, 3, true).unwrap();
        assert_eq!(
            s.game.alias(),
            "CCS",
            "alias resolution is case-insensitive"
        );
        let line = s.to_line();
        let parsed = JobSpec::parse_line(&line).unwrap();
        assert_eq!(parsed, s);
        // The spec and a CLI-built job agree on identity.
        let job = parsed.to_job(&PipelineConfig::default());
        assert!(job.key().starts_with("CCS|"));
        assert!(job.key().contains("|upper|480x192#3"));
    }

    #[test]
    fn job_spec_rejects_garbage() {
        assert!(JobSpec::parse_line("").is_none());
        assert!(JobSpec::parse_line("not json").is_none());
        assert!(
            JobSpec::parse_line("{\"game\":\"CCS\"}").is_none(),
            "missing fields"
        );
        assert!(
            JobSpec::parse_line(
                "{\"game\":\"NOPE\",\"schedule\":\"dtexl\",\"width\":96,\"height\":64,\"frame\":0,\"upper\":false}"
            )
            .is_none(),
            "unknown game"
        );
        assert!(JobSpec::new("CCS", "dtexl", 0, 64, 0, false).is_err());
    }

    #[test]
    fn submit_is_content_addressed_and_dedups_resubmission() {
        let spool = Spool::open(scratch("submit")).unwrap();
        let specs = vec![spec("CCS", "baseline"), spec("GTr", "dtexl")];
        let receipt = spool.submit(&specs).unwrap();
        assert_eq!(receipt.jobs, 2);
        assert!(receipt.path.exists());

        // Same set, different order: same content hash, typed dup.
        let reordered = vec![spec("GTr", "dtexl"), spec("CCS", "baseline")];
        match spool.submit(&reordered) {
            Err(JobError::DuplicateBatch { batch }) => assert_eq!(batch, receipt.batch),
            other => panic!("expected DuplicateBatch, got {other:?}"),
        }

        // A different set is a different batch.
        let other = spool.submit(&[spec("TRu", "baseline")]).unwrap();
        assert_ne!(other.batch, receipt.batch);
        let _ = std::fs::remove_dir_all(spool.root());
    }

    #[test]
    fn accept_moves_batches_and_quarantines_corruption() {
        let spool = Spool::open(scratch("accept")).unwrap();
        let receipt = spool.submit(&[spec("CCS", "baseline")]).unwrap();
        // A half-written batch (no atomic rename): ignored while it
        // has a temp name, quarantined once it looks complete but
        // does not parse.
        std::fs::write(
            spool.incoming_dir().join("batch-bad.jsonl.tmp-999"),
            "{\"ga",
        )
        .unwrap();
        std::fs::write(spool.incoming_dir().join("torn.jsonl"), "{\"game\":\"CC").unwrap();

        let report = spool.accept_incoming();
        assert_eq!(report.accepted, vec![receipt.batch.clone()]);
        assert_eq!(report.duplicates, Vec::<String>::new());
        assert_eq!(report.rejected.len(), 1, "only the torn complete file");
        assert_eq!(report.rejected[0].0, "torn.jsonl");
        assert!(
            spool.incoming_dir().join("torn.jsonl.rejected").exists(),
            "quarantined, not deleted"
        );
        assert!(
            spool
                .incoming_dir()
                .join("batch-bad.jsonl.tmp-999")
                .exists(),
            "in-progress temp files are left alone"
        );

        // Accepted specs are readable by a worker.
        let (specs, corrupt) = spool.accepted_specs();
        assert_eq!(specs.len(), 1);
        assert_eq!(corrupt, 0);
        assert_eq!(specs[0].game.alias(), "CCS");

        // Re-submitting the accepted batch is a duplicate at submit
        // time; a foreign copy dropped straight into incoming/ dedups
        // at accept time.
        assert!(matches!(
            spool.submit(&[spec("CCS", "baseline")]),
            Err(JobError::DuplicateBatch { .. })
        ));
        std::fs::write(
            spool.incoming_dir().join("copycat.jsonl"),
            std::fs::read_to_string(
                spool
                    .accepted_dir()
                    .join(format!("batch-{}.jsonl", receipt.batch)),
            )
            .unwrap(),
        )
        .unwrap();
        let report = spool.accept_incoming();
        assert_eq!(report.accepted, Vec::<String>::new());
        assert_eq!(report.duplicates, vec!["copycat.jsonl".to_string()]);
        let _ = std::fs::remove_dir_all(spool.root());
    }

    #[test]
    fn jobs_from_specs_dedups_by_key_across_batches() {
        let specs = vec![
            spec("CCS", "baseline"),
            spec("GTr", "dtexl"),
            spec("CCS", "baseline"),
        ];
        let jobs = jobs_from_specs(&specs, &PipelineConfig::default());
        assert_eq!(jobs.len(), 2, "the repeated CCS job collapses");
    }

    #[test]
    fn events_rotation_keeps_two_generations() {
        let spool = Spool::open(scratch("rotate")).unwrap();
        assert_eq!(
            spool.rotate_events(64),
            Ok(false),
            "no journal yet: nothing to rotate"
        );
        spool.append_event("{\"gen\":1}").unwrap();
        assert_eq!(spool.rotate_events(1 << 20), Ok(false), "under the cap");

        // Grow past a tiny cap and rotate: the live journal becomes
        // the .1 generation and the next append starts fresh.
        for _ in 0..8 {
            spool
                .append_event("{\"pad\":\"xxxxxxxxxxxxxxxx\"}")
                .unwrap();
        }
        assert_eq!(spool.rotate_events(64), Ok(true));
        assert!(!spool.events_journal().exists());
        assert!(spool.rotated_events_journal().exists());
        let gen1 = std::fs::read_to_string(spool.rotated_events_journal()).unwrap();
        assert!(gen1.starts_with("{\"gen\":1}"));

        // A second rotation replaces the old generation: exactly two
        // files ever exist.
        spool.append_event("{\"gen\":2}").unwrap();
        assert_eq!(spool.rotate_events(0), Ok(true));
        let gen2 = std::fs::read_to_string(spool.rotated_events_journal()).unwrap();
        assert!(gen2.starts_with("{\"gen\":2}"));
        let _ = std::fs::remove_dir_all(spool.root());
    }

    #[test]
    fn rotate_error_is_typed_and_displayable() {
        let err = RotateError {
            path: "spool/events.jsonl".into(),
            detail: "permission denied".into(),
        };
        let msg = err.to_string();
        assert!(msg.contains("events.jsonl"));
        assert!(msg.contains("permission denied"));
    }

    #[test]
    fn queue_errors_are_typed_and_never_retryable() {
        let dup = JobError::DuplicateBatch {
            batch: "abc".into(),
        };
        assert_eq!(dup.kind(), "duplicate_batch");
        assert!(!dup.retryable());
        assert!(dup.to_string().contains("already submitted"));
        let corrupt = JobError::SpoolCorrupt {
            path: "spool/incoming/x.jsonl".into(),
            detail: "line 3 does not parse".into(),
        };
        assert_eq!(corrupt.kind(), "spool_corrupt");
        assert!(!corrupt.retryable());
        assert!(corrupt.to_string().contains("corrupt"));
    }
}
