//! Workload characterization (§IV-B).
//!
//! The paper characterizes its benchmark suite by texture footprint and
//! notes that "the reuse of texture memory blocks also varies greatly
//! across different games". This module measures those properties of
//! the synthetic stand-ins from an actual baseline simulation.

use crate::sim::CLOCK_HZ;
use dtexl_pipeline::{BarrierMode, FrameSim, PipelineConfig};
use dtexl_scene::{Game, SceneSpec};
use dtexl_sched::ScheduleConfig;
use serde::{Deserialize, Serialize};

/// Measured characteristics of one workload under the baseline
/// configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadProfile {
    /// The benchmark.
    pub game: Game,
    /// Texture allocation in MiB (Table I's "texture footprint").
    pub footprint_mib: f64,
    /// Draw commands per frame.
    pub draws: usize,
    /// Triangles per frame.
    pub triangles: u32,
    /// Quads emitted by the rasterizer (pre early-Z).
    pub quads_rasterized: u64,
    /// Quads shaded (post early-Z).
    pub quads_shaded: u64,
    /// Average depth complexity: rasterized fragments per screen pixel.
    pub overdraw_factor: f64,
    /// Texture cache-line requests issued by the shader cores.
    pub texture_requests: u64,
    /// Distinct texture lines touched (compulsory-miss floor).
    pub distinct_lines: u64,
    /// Requests per distinct line — the paper's "reuse of texture
    /// memory blocks".
    pub reuse_factor: f64,
    /// Baseline frames per second at 600 MHz.
    pub baseline_fps: f64,
}

/// Measure `game` at `width × height` (baseline schedule, coupled
/// barriers).
///
/// # Panics
///
/// Panics if the resolution is zero.
#[must_use]
pub fn characterize(game: Game, width: u32, height: u32, frame: u32) -> WorkloadProfile {
    let scene = game.scene(&SceneSpec::new(width, height, frame));
    let r = FrameSim::run_with_resolution(
        &scene,
        &ScheduleConfig::baseline(),
        &PipelineConfig::default(),
        width,
        height,
    );
    let rasterized: u64 = r
        .tiles
        .iter()
        .map(|t| {
            t.quads_rasterized
                .iter()
                .map(|&q| u64::from(q))
                .sum::<u64>()
        })
        .sum();
    WorkloadProfile {
        game,
        footprint_mib: scene.texture_footprint_bytes() as f64 / (1024.0 * 1024.0),
        draws: scene.draws.len(),
        triangles: scene.triangle_count(),
        quads_rasterized: rasterized,
        quads_shaded: r.total_quads_shaded(),
        overdraw_factor: rasterized as f64 * 4.0 / f64::from(width * height),
        texture_requests: r.hierarchy.l1_accesses(),
        distinct_lines: r.hierarchy.distinct_lines,
        reuse_factor: r.hierarchy.reuse_factor(),
        baseline_fps: CLOCK_HZ / r.total_cycles(BarrierMode::Coupled) as f64,
    }
}

/// Characterize every Table I game.
#[must_use]
pub fn characterize_all(width: u32, height: u32, frame: u32) -> Vec<WorkloadProfile> {
    Game::ALL
        .iter()
        .map(|&g| characterize(g, width, height, frame))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_is_internally_consistent() {
        let p = characterize(Game::GravityTetris, 256, 128, 0);
        assert!(p.quads_shaded <= p.quads_rasterized);
        assert!(p.overdraw_factor > 1.0, "layered scenes overdraw");
        assert!(p.reuse_factor > 1.0, "texture lines are reused");
        assert!(p.distinct_lines <= p.texture_requests);
        assert!(p.baseline_fps > 0.0);
        assert!((0.3..1.5).contains(&p.footprint_mib));
    }

    #[test]
    fn reuse_varies_greatly_across_games() {
        // §IV-B: "the reuse of texture memory blocks also varies
        // greatly across different games".
        let small = characterize(Game::ShootWar, 256, 128, 0);
        let large = characterize(Game::RiseOfKingdoms, 256, 128, 0);
        let ratio = small.reuse_factor / large.reuse_factor;
        assert!(
            !(0.67..=1.5).contains(&ratio),
            "reuse factors too similar: {} vs {}",
            small.reuse_factor,
            large.reuse_factor
        );
    }
}
