//! Frame profiling: capture the observability event streams for one
//! frame and turn them into a stall-attribution report and a
//! Chrome-trace / Perfetto export.
//!
//! [`FrameProfile::capture`] runs the functional pass once with an
//! event probe (per-tile raster counts, per-subtile memory counters),
//! then composes frame time under **both** barrier modes with span
//! probes — every (SC, stage, tile) interval is attributed busy /
//! wait-upstream / wait-barrier. Both compositions read the same
//! [`StageDurations`](dtexl_pipeline::StageDurations), which are
//! bit-identical across thread counts, so the whole profile is too
//! (pinned by `tests/obs_determinism.rs`).
//!
//! Timestamps are simulated cycles with 0 = start of the raster phase;
//! geometry and tiling cycles are reported separately in the profile's
//! [`FrameResult`].

use crate::metrics::{Distribution, Table};
use crate::sim::SimConfig;
use dtexl_obs::perfetto::{chrome_trace, TrackGroup};
use dtexl_obs::{
    Event, EventSink, MemSample, ObsRollup, Probe, RasterSample, RollupMode, Span, SpanKind, Stage,
    StallRollup,
};
use dtexl_pipeline::{compose_frame_probed, BarrierMode, FrameResult, FrameSim, SimError};
use dtexl_scene::SceneSpec;
use std::collections::BTreeMap;

/// A profiled frame: the functional result plus the recorded event
/// streams under both barrier modes.
#[derive(Debug, Clone)]
pub struct FrameProfile {
    /// The configuration profiled.
    pub config: SimConfig,
    /// The underlying frame result (durations, caches, tiles).
    pub result: FrameResult,
    /// Per-subtile memory samples, tile-major / SC-ascending.
    pub mem: Vec<MemSample>,
    /// Per-tile rasterizer samples, in schedule order.
    pub raster: Vec<RasterSample>,
    /// Busy/wait spans under coupled barriers.
    pub coupled: Vec<Span>,
    /// Busy/wait spans under decoupled barriers.
    pub decoupled: Vec<Span>,
    /// Raster-phase cycles under coupled barriers.
    pub coupled_cycles: u64,
    /// Raster-phase cycles under decoupled barriers.
    pub decoupled_cycles: u64,
    /// Events lost to sink overflow (0 unless the frame is enormous).
    pub dropped: u64,
}

impl FrameProfile {
    /// Simulate `config`'s frame with probes attached and collect the
    /// full event picture.
    ///
    /// # Errors
    ///
    /// Returns a [`SimError`] when the configuration or generated scene
    /// is invalid — the same conditions as
    /// [`FrameSim::try_run_with_resolution`].
    pub fn capture(config: &SimConfig) -> Result<Self, SimError> {
        let spec = SceneSpec::try_new(config.width, config.height, config.frame)
            .map_err(SimError::Scene)?;
        let scene = config.game.scene(&spec);
        let mut sink = EventSink::new();
        let result = FrameSim::try_run_probed(
            &scene,
            &config.schedule,
            &config.pipeline,
            config.width,
            config.height,
            &mut sink,
        )?;
        let mem = sink.mem_samples();
        let raster = sink.raster_samples();
        let mut dropped = sink.dropped();

        let mut spans_of = |mode: BarrierMode| {
            let mut s = EventSink::new();
            let cycles = compose_frame_probed(&result.durations, mode, &mut s);
            dropped += s.dropped();
            (s.spans(), cycles)
        };
        let (coupled, coupled_cycles) = spans_of(BarrierMode::Coupled);
        let (decoupled, decoupled_cycles) = spans_of(BarrierMode::Decoupled);

        Ok(Self {
            config: *config,
            result,
            mem,
            raster,
            coupled,
            decoupled,
            coupled_cycles,
            decoupled_cycles,
            dropped,
        })
    }

    /// The stall-attribution table: per unit (row), total busy cycles
    /// plus barrier-wait and upstream-wait cycles under each barrier
    /// mode (columns `busy`, `c-barrier`, `c-upstream`, `d-barrier`,
    /// `d-upstream`). Busy cycles are mode-invariant by construction —
    /// both compositions replay the same durations — so a single `busy`
    /// column serves both.
    #[must_use]
    pub fn stall_table(&self) -> Table {
        let coupled = per_unit_totals(&self.coupled);
        let decoupled = per_unit_totals(&self.decoupled);
        let mut t = Table::new(
            "stalls",
            format!(
                "Busy vs wait cycles per unit — {} {} {}x{}",
                self.config.game.alias(),
                self.config.schedule.label(),
                self.config.width,
                self.config.height
            ),
            ["busy", "c-barrier", "c-upstream", "d-barrier", "d-upstream"]
                .map(String::from)
                .to_vec(),
        );
        for (stage, sc) in unit_order() {
            let c = coupled.get(&(stage, sc)).copied().unwrap_or_default();
            let d = decoupled.get(&(stage, sc)).copied().unwrap_or_default();
            t.push_row(
                dtexl_obs::perfetto::track_name(stage, sc),
                vec![
                    c[0] as f64,
                    c[2] as f64,
                    c[1] as f64,
                    d[2] as f64,
                    d[1] as f64,
                ],
            );
        }
        t
    }

    /// Distribution of per-tile *barrier*-wait cycles per back-half
    /// stage under `mode` (columns `min`/`p25`/`mean`/`p75`/`max`).
    /// Under pure decoupled composition the populations are empty and
    /// the rows are all zero — [`Distribution::from_samples`] pins that
    /// contract.
    #[must_use]
    pub fn wait_table(&self, mode: BarrierMode) -> Table {
        let spans = match mode {
            BarrierMode::Coupled => &self.coupled,
            _ => &self.decoupled,
        };
        let mut t = Table::new(
            "waits",
            format!("Per-tile barrier-wait cycles ({mode:?})"),
            ["min", "p25", "mean", "p75", "max"]
                .map(String::from)
                .to_vec(),
        );
        for stage in [Stage::EarlyZ, Stage::Fragment, Stage::Blend] {
            let samples: Vec<f64> = spans
                .iter()
                .filter(|s| s.stage == stage && s.kind == SpanKind::WaitBarrier)
                .map(|s| s.cycles() as f64)
                .collect();
            let d = Distribution::from_samples(&samples);
            t.push_row(stage.name(), vec![d.min, d.p25, d.mean, d.p75, d.max]);
        }
        t
    }

    /// Fold the captured event streams into the journal's per-job
    /// rollup form — the same [`ObsRollup`] a `dtexl sweep --with-obs`
    /// run journals for this configuration (pinned by
    /// `tests/obs_rollup.rs`), so an exported profile and a journal
    /// record diff against each other freely.
    #[must_use]
    pub fn rollup(&self) -> ObsRollup {
        let mut rollup = ObsRollup::default();
        {
            let mut probe = rollup.probe(RollupMode::Sim);
            for m in &self.mem {
                probe.record(Event::Mem(*m));
            }
        }
        for (mode, spans) in [
            (RollupMode::Coupled, &self.coupled),
            (RollupMode::Decoupled, &self.decoupled),
        ] {
            let mut probe = rollup.probe(mode);
            for s in spans {
                probe.record(Event::Span(*s));
            }
        }
        rollup
    }

    /// Chrome-trace / Perfetto JSON for the profile: process 1 is the
    /// coupled composition, process 2 the decoupled one, each with one
    /// track per (SC, stage) unit. Open at <https://ui.perfetto.dev>.
    #[must_use]
    pub fn chrome_trace(&self) -> String {
        chrome_trace(&[
            TrackGroup {
                pid: 1,
                name: "coupled",
                spans: &self.coupled,
                mem: &self.mem,
            },
            TrackGroup {
                pid: 2,
                name: "decoupled",
                spans: &self.decoupled,
                mem: &self.mem,
            },
        ])
    }
}

/// The per-unit stall delta between two stall rollups, `b − a`: one
/// row per (SC, stage) unit, with a signed cycle delta and a percent
/// change for each of busy / wait-upstream / wait-barrier. Percent
/// change is relative to `a`; a unit going from zero to nonzero reads
/// as +100%, zero to zero as 0%. This powers `dtexl profile --diff`.
#[must_use]
pub fn stall_diff_table(a: &StallRollup, b: &StallRollup, title: impl Into<String>) -> Table {
    let pct = |x: f64, y: f64| -> f64 {
        if x == 0.0 {
            if y > 0.0 {
                100.0
            } else {
                0.0
            }
        } else {
            100.0 * (y - x) / x
        }
    };
    let mut t = Table::new(
        "stall-diff",
        title,
        [
            "busy",
            "busy%",
            "upstream",
            "upstream%",
            "barrier",
            "barrier%",
        ]
        .map(String::from)
        .to_vec(),
    );
    for (i, (stage, sc)) in dtexl_obs::rollup::unit_order().iter().enumerate() {
        let (ua, ub) = (a.units[i], b.units[i]);
        let mut row = Vec::with_capacity(6);
        for col in 0..3 {
            let (x, y) = (ua[col] as f64, ub[col] as f64);
            row.push(y - x);
            row.push(pct(x, y));
        }
        t.push_row(dtexl_obs::perfetto::track_name(*stage, *sc), row);
    }
    t
}

/// Units in dataflow order: the serial front-end stages, then each
/// back-half stage across its four SC units.
fn unit_order() -> Vec<(Stage, u8)> {
    let mut order = vec![(Stage::Fetch, 0), (Stage::Raster, 0)];
    for stage in [Stage::EarlyZ, Stage::Fragment, Stage::Blend] {
        for sc in 0..4u8 {
            order.push((stage, sc));
        }
    }
    order
}

/// Accumulate `[busy, wait_upstream, wait_barrier]` cycle totals per
/// (stage, SC) unit.
fn per_unit_totals(spans: &[Span]) -> BTreeMap<(Stage, u8), [u64; 3]> {
    let mut totals: BTreeMap<(Stage, u8), [u64; 3]> = BTreeMap::new();
    for s in spans {
        let slot = totals.entry((s.stage, s.sc)).or_default();
        let i = match s.kind {
            SpanKind::Busy => 0,
            SpanKind::WaitUpstream => 1,
            SpanKind::WaitBarrier => 2,
        };
        slot[i] += s.cycles();
    }
    totals
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtexl_scene::Game;

    fn small_profile() -> FrameProfile {
        let cfg = SimConfig::dtexl(Game::GravityTetris).with_resolution(256, 128);
        FrameProfile::capture(&cfg).expect("valid config")
    }

    #[test]
    fn capture_agrees_with_unprobed_composition() {
        let p = small_profile();
        let raster_phase_coupled = p.result.total_cycles(BarrierMode::Coupled)
            - p.result.geometry.cycles
            - p.result.tiling.build_cycles;
        assert_eq!(p.coupled_cycles, raster_phase_coupled);
        assert!(p.decoupled_cycles <= p.coupled_cycles);
        assert_eq!(p.dropped, 0);
        assert_eq!(p.raster.len(), p.result.tiles.len());
        assert_eq!(p.mem.len(), p.result.tiles.len() * 4);
    }

    #[test]
    fn stall_table_accounts_for_busy_and_waits() {
        let p = small_profile();
        let t = p.stall_table();
        assert_eq!(t.rows.len(), 2 + 3 * 4);
        // Busy cycles are positive for every fragment unit.
        for sc in 0..4 {
            let busy = t.get(&format!("fragment/SC{sc}"), "busy").unwrap();
            assert!(busy > 0.0, "SC{sc} must do work");
        }
        // Coupled barriers wait somewhere; decoupled composition (pure,
        // unbounded) never holds a unit at a barrier.
        let c_barrier: f64 = t
            .rows
            .iter()
            .map(|r| t.get(&r.label, "c-barrier").unwrap())
            .sum();
        let d_barrier: f64 = t
            .rows
            .iter()
            .map(|r| t.get(&r.label, "d-barrier").unwrap())
            .sum();
        assert!(c_barrier > 0.0, "coupled composition must barrier-wait");
        assert_eq!(d_barrier, 0.0, "pure decoupled has no barrier waits");
    }

    #[test]
    fn wait_table_handles_empty_populations() {
        let p = small_profile();
        let coupled = p.wait_table(BarrierMode::Coupled);
        let decoupled = p.wait_table(BarrierMode::Decoupled);
        assert!(coupled.get("fragment", "max").unwrap() > 0.0);
        for stage in ["early_z", "fragment", "blend"] {
            for col in ["min", "p25", "mean", "p75", "max"] {
                assert_eq!(
                    decoupled.get(stage, col),
                    Some(0.0),
                    "{stage}/{col}: empty population must summarize to zero"
                );
            }
        }
    }

    #[test]
    fn rollup_folds_the_same_totals_as_the_stall_table() {
        let p = small_profile();
        let r = p.rollup();
        let t = p.stall_table();
        assert_eq!(
            r.coupled.busy(Stage::Fragment, 0) as f64,
            t.get("fragment/SC0", "busy").unwrap()
        );
        assert_eq!(
            r.coupled.wait_barrier(Stage::Fragment, 1) as f64,
            t.get("fragment/SC1", "c-barrier").unwrap()
        );
        assert_eq!(
            r.decoupled.wait_upstream(Stage::Blend, 2) as f64,
            t.get("blend/SC2", "d-upstream").unwrap()
        );
        let dram: u64 = p.mem.iter().map(|m| m.dram_requests).sum();
        assert_eq!(r.dram_requests, dram, "mem counters fold too");
        assert!(r.l1_hits > 0);
    }

    #[test]
    fn diff_of_coupled_vs_decoupled_kills_barrier_waits_only() {
        let p = small_profile();
        let r = p.rollup();
        let t = stall_diff_table(&r.coupled, &r.decoupled, "coupled -> decoupled");
        assert_eq!(t.rows.len(), 2 + 3 * 4);
        for row in &t.rows {
            assert_eq!(
                t.get(&row.label, "busy"),
                Some(0.0),
                "{}: busy cycles are mode-invariant",
                row.label
            );
        }
        let total_barrier: f64 = t
            .rows
            .iter()
            .map(|r2| t.get(&r2.label, "barrier").unwrap())
            .sum();
        assert!(total_barrier < 0.0, "decoupling removes barrier waits");
        // Any unit that barrier-waited under coupled loses 100% of it.
        for row in &t.rows {
            let delta = t.get(&row.label, "barrier").unwrap();
            let pct = t.get(&row.label, "barrier%").unwrap();
            if delta < 0.0 {
                assert_eq!(pct, -100.0, "{}: pure decoupled zeroes the wait", row.label);
            } else {
                assert_eq!(pct, 0.0);
            }
        }
    }

    #[test]
    fn chrome_trace_is_deterministic_and_structured() {
        let a = small_profile().chrome_trace();
        let b = small_profile().chrome_trace();
        assert_eq!(a, b, "profiling must be reproducible byte-for-byte");
        assert!(a.starts_with("{\"displayTimeUnit\""));
        assert!(a.contains("\"process_name\""));
        assert!(a.contains("coupled") && a.contains("decoupled"));
        assert!(a.contains("fragment/SC"));
        assert_eq!(a.matches('{').count(), a.matches('}').count());
    }
}
