//! Daemon metrics registry with Prometheus text-format exposition.
//!
//! A fixed, statically-declared set of counters, gauges and one
//! histogram covering the daemon-mode sweep stack — spool ingest,
//! dispatch fleet, live merger and status plane. The registry is
//! plain `std` atomics (no locks, no maps, no dependencies): every
//! metric is a named struct field, so the exposition order, HELP and
//! TYPE lines are compiled in and the render is deterministic for a
//! given set of values.
//!
//! Two feeding disciplines keep Prometheus semantics honest:
//!
//! * **Event-fed counters** ([`Counter::inc`] / [`Counter::add`])
//!   count occurrences the caller observes directly, e.g. a merge
//!   swap.
//! * **Snapshot-fed counters** ([`Counter::record_total`]) track an
//!   absolute total computed elsewhere (batch counts, journal
//!   coverage). `record_total` is a `fetch_max`, so a transient dip
//!   in the source (a key flipping `failed` → `ok` on a retry pass
//!   shrinks the failed count) can never make the exposed counter go
//!   backwards — scrapers may rely on counter monotonicity.
//!
//! The daemon renders the registry with [`DaemonMetrics::render`] and
//! publishes the text two ways: an atomically-swapped `metrics.prom`
//! in the spool and a `metrics` line command on the status socket
//! (see `docs/OBSERVABILITY.md` for the full inventory).

use std::sync::atomic::{AtomicU64, Ordering};

/// A monotone counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Increment by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increment by `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Feed from an absolute total: raise the counter to `total` if
    /// that is higher, never lower it (see the module docs on
    /// snapshot-fed counters).
    pub fn record_total(&self, total: u64) {
        self.0.fetch_max(total, Ordering::Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that can go up and down.
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// Set the gauge to `v`.
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Upper bounds (seconds) of the job wall-clock histogram buckets;
/// an implicit `+Inf` bucket follows. Rendered literally, so the
/// exposed `le` labels never drift with float formatting.
pub const WALL_CLOCK_BUCKETS: [(&str, u64); 7] = [
    ("0.01", 10),
    ("0.05", 50),
    ("0.25", 250),
    ("1", 1_000),
    ("5", 5_000),
    ("30", 30_000),
    ("120", 120_000),
];

/// A fixed-bucket histogram of durations, fed in integer
/// milliseconds (no float atomics needed) and exposed in seconds.
#[derive(Debug, Default)]
pub struct Histogram {
    buckets: [AtomicU64; WALL_CLOCK_BUCKETS.len()],
    sum_ms: AtomicU64,
    count: AtomicU64,
}

impl Histogram {
    /// Record one observation of `ms` milliseconds.
    pub fn observe_ms(&self, ms: u64) {
        for (i, (_, bound_ms)) in WALL_CLOCK_BUCKETS.iter().enumerate() {
            if ms <= *bound_ms {
                self.buckets[i].fetch_add(1, Ordering::Relaxed);
            }
        }
        self.sum_ms.fetch_add(ms, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Total observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Render the `_bucket`/`_sum`/`_count` sample lines for a
    /// histogram named `name` into `out`. Buckets are cumulative, as
    /// the exposition format requires.
    fn render_into(&self, name: &str, out: &mut String) {
        use std::fmt::Write as _;
        for (i, (le, _)) in WALL_CLOCK_BUCKETS.iter().enumerate() {
            let v = self.buckets[i].load(Ordering::Relaxed);
            let _ = writeln!(out, "{name}_bucket{{le=\"{le}\"}} {v}");
        }
        let count = self.count.load(Ordering::Relaxed);
        let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {count}");
        let sum_ms = self.sum_ms.load(Ordering::Relaxed);
        let _ = writeln!(out, "{name}_sum {}.{:03}", sum_ms / 1_000, sum_ms % 1_000);
        let _ = writeln!(out, "{name}_count {count}");
    }
}

/// Shard-restart causes tracked as `cause` label values on
/// `dtexl_shard_restarts_total`. The first three mirror the
/// [`DeathCause`](crate::dispatch) display prefixes; `other` absorbs
/// anything a future cause adds without silently dropping it.
pub const RESTART_CAUSES: [&str; 4] = ["crashed", "wedged", "oom-killed", "other"];

/// The daemon's metric set. One instance lives for the whole daemon
/// run; every field is independently thread-safe, so producer layers
/// can share it behind a plain `&DaemonMetrics`.
#[derive(Debug, Default)]
pub struct DaemonMetrics {
    /// Batches moved `incoming/` → `accepted/` (snapshot-fed).
    pub batches_accepted: Counter,
    /// Incoming batches dropped as duplicates (snapshot-fed).
    pub batches_duplicate: Counter,
    /// Incoming batches quarantined as corrupt (snapshot-fed).
    pub batches_rejected: Counter,
    /// Jobs in the accepted queue after key dedup (gauge).
    pub jobs_submitted: Gauge,
    /// Jobs not yet terminal in the merged journal (gauge).
    pub queue_depth: Gauge,
    /// Jobs currently running across the fleet (gauge).
    pub jobs_in_flight: Gauge,
    /// Jobs terminal-ok in the merged journal (snapshot-fed; includes
    /// resume-skips, matching the status document's `ok` count).
    pub jobs_ok: Counter,
    /// Jobs terminal-failed in the merged journal (snapshot-fed).
    pub jobs_failed: Counter,
    /// Jobs quarantined as poisoned (snapshot-fed).
    pub jobs_poisoned: Counter,
    /// Shard restarts by cause, indexed as [`RESTART_CAUSES`]
    /// (snapshot-fed from cumulative per-shard death lists).
    pub shard_restarts: [Counter; RESTART_CAUSES.len()],
    /// Live-merge passes that produced a new `merged.jsonl`
    /// (event-fed).
    pub merge_swaps: Counter,
    /// Atomic swaps of `status.json` (snapshot-fed).
    pub status_writes: Counter,
    /// Peak bytes allocated by any job so far (gauge).
    pub peak_alloc_bytes: Gauge,
    /// Wall-clock seconds per terminal job, observed once per job as
    /// it first turns terminal in the merged journal.
    pub job_wall_clock: Histogram,
}

impl DaemonMetrics {
    /// Fresh registry, all zeros.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one shard restart under `cause` — the
    /// [`DeathCause`](crate::dispatch) display prefix (the text
    /// before `" ("`). Unknown causes land on `other`.
    pub fn record_restart_total(&self, cause: &str, total: u64) {
        let idx = RESTART_CAUSES
            .iter()
            .position(|c| *c == cause)
            .unwrap_or(RESTART_CAUSES.len() - 1);
        self.shard_restarts[idx].record_total(total);
    }

    /// Render the whole registry as Prometheus text exposition format
    /// (version 0.0.4): `# HELP` and `# TYPE` lines for every metric
    /// family, then its samples, in a fixed compiled-in order.
    #[must_use]
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::with_capacity(2048);
        let mut simple = |name: &str, kind: &str, help: &str, value: u64| {
            let _ = writeln!(out, "# HELP {name} {help}");
            let _ = writeln!(out, "# TYPE {name} {kind}");
            let _ = writeln!(out, "{name} {value}");
        };
        simple(
            "dtexl_batches_accepted_total",
            "counter",
            "Batches moved incoming/ to accepted/.",
            self.batches_accepted.get(),
        );
        simple(
            "dtexl_batches_duplicate_total",
            "counter",
            "Incoming batches dropped as duplicates of accepted ones.",
            self.batches_duplicate.get(),
        );
        simple(
            "dtexl_batches_rejected_total",
            "counter",
            "Incoming batches quarantined as corrupt.",
            self.batches_rejected.get(),
        );
        simple(
            "dtexl_jobs_submitted",
            "gauge",
            "Jobs in the accepted queue after key dedup.",
            self.jobs_submitted.get(),
        );
        simple(
            "dtexl_queue_depth",
            "gauge",
            "Jobs not yet terminal in the merged journal.",
            self.queue_depth.get(),
        );
        simple(
            "dtexl_jobs_in_flight",
            "gauge",
            "Jobs currently running across the fleet.",
            self.jobs_in_flight.get(),
        );
        simple(
            "dtexl_jobs_ok_total",
            "counter",
            "Jobs terminal-ok in the merged journal (including resume skips).",
            self.jobs_ok.get(),
        );
        simple(
            "dtexl_jobs_failed_total",
            "counter",
            "Jobs terminal-failed in the merged journal.",
            self.jobs_failed.get(),
        );
        simple(
            "dtexl_jobs_poisoned_total",
            "counter",
            "Jobs quarantined as poisoned (repeated unexplained worker death).",
            self.jobs_poisoned.get(),
        );
        let _ = writeln!(
            out,
            "# HELP dtexl_shard_restarts_total Shard worker restarts by death cause."
        );
        let _ = writeln!(out, "# TYPE dtexl_shard_restarts_total counter");
        for (i, cause) in RESTART_CAUSES.iter().enumerate() {
            let _ = writeln!(
                out,
                "dtexl_shard_restarts_total{{cause=\"{cause}\"}} {}",
                self.shard_restarts[i].get()
            );
        }
        let mut simple = |name: &str, kind: &str, help: &str, value: u64| {
            let _ = writeln!(out, "# HELP {name} {help}");
            let _ = writeln!(out, "# TYPE {name} {kind}");
            let _ = writeln!(out, "{name} {value}");
        };
        simple(
            "dtexl_merge_swaps_total",
            "counter",
            "Live-merge passes that swapped in a new merged.jsonl.",
            self.merge_swaps.get(),
        );
        simple(
            "dtexl_status_writes_total",
            "counter",
            "Atomic swaps of status.json.",
            self.status_writes.get(),
        );
        simple(
            "dtexl_peak_alloc_bytes",
            "gauge",
            "Peak bytes allocated by any job so far.",
            self.peak_alloc_bytes.get(),
        );
        let _ = writeln!(
            out,
            "# HELP dtexl_job_wall_clock_seconds Wall-clock seconds per terminal job."
        );
        let _ = writeln!(out, "# TYPE dtexl_job_wall_clock_seconds histogram");
        self.job_wall_clock
            .render_into("dtexl_job_wall_clock_seconds", &mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_are_monotone_under_snapshot_feeding() {
        let c = Counter::default();
        c.record_total(5);
        assert_eq!(c.get(), 5);
        c.record_total(3);
        assert_eq!(c.get(), 5, "a shrinking source never lowers the counter");
        c.record_total(9);
        assert_eq!(c.get(), 9);
        c.inc();
        assert_eq!(c.get(), 10);
    }

    #[test]
    fn histogram_buckets_are_cumulative_and_sum_is_seconds() {
        let h = Histogram::default();
        h.observe_ms(7); // le 0.01
        h.observe_ms(40); // le 0.05
        h.observe_ms(1_500); // le 5
        h.observe_ms(999_999); // +Inf only
        let mut out = String::new();
        h.render_into("x", &mut out);
        assert!(out.contains("x_bucket{le=\"0.01\"} 1"));
        assert!(out.contains("x_bucket{le=\"0.05\"} 2"));
        assert!(out.contains("x_bucket{le=\"0.25\"} 2"));
        assert!(out.contains("x_bucket{le=\"5\"} 3"));
        assert!(out.contains("x_bucket{le=\"120\"} 3"));
        assert!(out.contains("x_bucket{le=\"+Inf\"} 4"));
        assert!(out.contains("x_sum 1001.546"));
        assert!(out.contains("x_count 4"));
    }

    #[test]
    fn render_is_valid_exposition_with_help_and_type_for_every_family() {
        let m = DaemonMetrics::new();
        m.batches_accepted.record_total(2);
        m.jobs_ok.record_total(10);
        m.jobs_in_flight.set(3);
        m.record_restart_total("wedged", 1);
        m.record_restart_total("heat-death", 4); // unknown → other
        m.merge_swaps.inc();
        m.job_wall_clock.observe_ms(120);
        let text = m.render();

        // Every sample line's family has HELP and TYPE lines.
        for line in text
            .lines()
            .filter(|l| !l.starts_with('#') && !l.is_empty())
        {
            let name = line.split([' ', '{']).next().unwrap();
            let family = if name.starts_with("dtexl_job_wall_clock_seconds") {
                "dtexl_job_wall_clock_seconds"
            } else {
                name
            };
            assert!(
                text.contains(&format!("# HELP {family} ")),
                "sample {name} lacks a HELP line for {family}"
            );
            assert!(
                text.contains(&format!("# TYPE {family} ")),
                "sample {name} lacks a TYPE line for {family}"
            );
        }
        assert!(text.contains("dtexl_batches_accepted_total 2"));
        assert!(text.contains("dtexl_jobs_ok_total 10"));
        assert!(text.contains("dtexl_jobs_in_flight 3"));
        assert!(text.contains("dtexl_shard_restarts_total{cause=\"wedged\"} 1"));
        assert!(text.contains("dtexl_shard_restarts_total{cause=\"other\"} 4"));
        assert!(text.contains("dtexl_merge_swaps_total 1"));
        assert!(text.contains("dtexl_job_wall_clock_seconds_count 1"));
        assert!(text.ends_with('\n'));
    }

    #[test]
    fn render_is_deterministic_for_equal_values() {
        let a = DaemonMetrics::new();
        let b = DaemonMetrics::new();
        a.jobs_ok.record_total(4);
        b.jobs_ok.record_total(4);
        assert_eq!(a.render(), b.render());
    }
}
