//! Text rendering of experiment results.

use crate::metrics::Table;
use crate::sim::CLOCK_HZ;
use dtexl_pipeline::PipelineConfig;

/// Render Table II (the simulation parameters actually in force).
#[must_use]
pub fn table2_text(config: &PipelineConfig) -> String {
    let h = config.hierarchy;
    format!(
        "== table2 — GPU simulation parameters ==\n\
         Tech Specs            {:.0} MHz\n\
         Tile Size             {}x{}\n\
         Shader Cores          {} (x{} warp slots)\n\
         Main Memory Latency   {}-{} cycles\n\
         Vertex Cache          {} KiB, {}-way, {} cycle\n\
         Texture Caches ({}x)   {} KiB, {}-way, {} cycle\n\
         Tile Cache            {} KiB, {}-way, {} cycle\n\
         L2 Cache              {} KiB, {}-way, {} cycles\n",
        CLOCK_HZ / 1e6,
        config.tile_size,
        config.tile_size,
        config.num_sc,
        config.warp_slots,
        h.dram.min_latency,
        h.dram.max_latency,
        config.vertex_cache.size_bytes / 1024,
        config.vertex_cache.ways,
        config.vertex_cache.latency,
        config.num_sc,
        h.l1.size_bytes / 1024,
        h.l1.ways,
        h.l1.latency,
        config.tile_cache.size_bytes / 1024,
        config.tile_cache.ways,
        config.tile_cache.latency,
        h.l2.size_bytes / 1024,
        h.l2.ways,
        h.l2.latency,
    )
}

/// Render an ASCII heatmap of per-tile SC execution-time imbalance:
/// one character per tile, darker = more imbalanced. Makes the spatial
/// structure of the overdraw clustering (and hence of the CG
/// grouping's pain) visible at a glance.
#[must_use]
pub fn tile_imbalance_heatmap(result: &dtexl_pipeline::FrameResult) -> String {
    const RAMP: [char; 6] = [' ', '░', '▒', '▓', '█', '█'];
    let (mut max_x, mut max_y) = (0u32, 0u32);
    for t in &result.tiles {
        max_x = max_x.max(t.tile.0);
        max_y = max_y.max(t.tile.1);
    }
    let w = (max_x + 1) as usize;
    let mut grid = vec![vec![' '; w]; (max_y + 1) as usize];
    for t in &result.tiles {
        let v: [f64; 4] = t.frag_cycles.map(|c| c as f64);
        let mean = v.iter().sum::<f64>() / 4.0;
        let c = if mean <= 0.0 {
            '·'
        } else {
            let dev = v.iter().map(|x| (x - mean).abs()).sum::<f64>() / 4.0 / mean;
            // 0% → ' ', ≥50% → '█'
            RAMP[((dev * 10.0) as usize).min(RAMP.len() - 1)]
        };
        grid[t.tile.1 as usize][t.tile.0 as usize] = c;
    }
    let mut out = String::with_capacity((w + 3) * grid.len());
    out.push_str("per-tile SC time imbalance ('·' empty, ' '→'█' = 0%→50%+):\n");
    for row in grid {
        out.push('|');
        out.extend(row);
        out.push_str("|\n");
    }
    out
}

/// Render a full report from a set of result tables.
#[must_use]
pub fn render_all(tables: &[Table]) -> String {
    let mut out = String::new();
    out.push_str(&table2_text(&PipelineConfig::default()));
    out.push('\n');
    for t in tables {
        out.push_str(&t.render());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_lists_table_ii_values() {
        let s = table2_text(&PipelineConfig::default());
        assert!(s.contains("600 MHz"));
        assert!(s.contains("32x32"));
        assert!(s.contains("50-100 cycles"));
        assert!(s.contains("16 KiB, 4-way"));
        assert!(s.contains("1024 KiB, 8-way, 12 cycles"));
    }

    #[test]
    fn heatmap_has_one_row_per_tile_row() {
        use dtexl_pipeline::FrameSim;
        use dtexl_scene::{Game, SceneSpec};
        use dtexl_sched::ScheduleConfig;
        let scene = Game::GravityTetris.scene(&SceneSpec::new(256, 128, 0));
        let r = FrameSim::run_with_resolution(
            &scene,
            &ScheduleConfig::dtexl(),
            &PipelineConfig::default(),
            256,
            128,
        );
        let map = tile_imbalance_heatmap(&r);
        // 256×128 at 32px tiles → 8×4 tiles → 4 map rows + header.
        assert_eq!(map.lines().count(), 5);
        assert!(map.lines().nth(1).unwrap().len() >= 10);
    }

    #[test]
    fn render_all_concatenates() {
        let mut t = Table::new("figX", "demo", vec!["v".into()]);
        t.push_row("CCS", vec![1.0]);
        let s = render_all(&[t]);
        assert!(s.contains("table2"));
        assert!(s.contains("figX"));
    }
}
