//! Result tables and distribution summaries.

use serde::{Deserialize, Serialize};

/// One labeled row of numbers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Row {
    /// Row label (usually a game alias or a mapping name).
    pub label: String,
    /// Values, one per column.
    pub values: Vec<f64>,
}

/// A generic experiment result: a labeled table of numbers, one row per
/// game or configuration. Every figure/table reproduction produces one
/// of these; [`Table::render`] prints it aligned for terminals and
/// reports.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table {
    /// Short id, e.g. `"fig16"`.
    pub id: String,
    /// Human title, e.g. `"Decrease in L2 accesses vs baseline (%)"`.
    pub title: String,
    /// Column headers (not counting the label column).
    pub columns: Vec<String>,
    /// Data rows.
    pub rows: Vec<Row>,
}

impl Table {
    /// Create an empty table.
    #[must_use]
    pub fn new(id: impl Into<String>, title: impl Into<String>, columns: Vec<String>) -> Self {
        Self {
            id: id.into(),
            title: title.into(),
            columns,
            rows: Vec::new(),
        }
    }

    /// Append a row.
    ///
    /// # Panics
    ///
    /// Panics if the value count does not match the column count.
    pub fn push_row(&mut self, label: impl Into<String>, values: Vec<f64>) {
        assert_eq!(
            values.len(),
            self.columns.len(),
            "row width must match columns"
        );
        self.rows.push(Row {
            label: label.into(),
            values,
        });
    }

    /// Append a `GMean`/`Mean` summary row averaging each column over
    /// the existing rows.
    pub fn push_mean_row(&mut self) {
        if self.rows.is_empty() {
            return;
        }
        let n = self.rows.len() as f64;
        let values = (0..self.columns.len())
            .map(|c| self.rows.iter().map(|r| r.values[c]).sum::<f64>() / n)
            .collect();
        self.rows.push(Row {
            label: "Mean".into(),
            values,
        });
    }

    /// Value at `(row_label, column_name)`, if present.
    #[must_use]
    pub fn get(&self, row_label: &str, column: &str) -> Option<f64> {
        let c = self.columns.iter().position(|x| x == column)?;
        let r = self.rows.iter().find(|r| r.label == row_label)?;
        r.values.get(c).copied()
    }

    /// Cell-wise mean of several same-shaped tables (used to average an
    /// experiment over multiple animation frames).
    ///
    /// # Panics
    ///
    /// Panics if `tables` is empty or the tables disagree in id,
    /// columns or row labels.
    #[must_use]
    pub fn average(tables: &[Table]) -> Table {
        assert!(!tables.is_empty(), "need at least one table");
        let first = &tables[0];
        for t in tables {
            assert_eq!(t.id, first.id, "table ids differ");
            assert_eq!(t.columns, first.columns, "columns differ");
            assert_eq!(t.rows.len(), first.rows.len(), "row counts differ");
            for (a, b) in t.rows.iter().zip(&first.rows) {
                assert_eq!(a.label, b.label, "row labels differ");
            }
        }
        let n = tables.len() as f64;
        let mut out = first.clone();
        for (ri, row) in out.rows.iter_mut().enumerate() {
            for (ci, v) in row.values.iter_mut().enumerate() {
                *v = tables.iter().map(|t| t.rows[ri].values[ci]).sum::<f64>() / n;
            }
        }
        out
    }

    /// Serialize as CSV (label column first).
    #[must_use]
    pub fn to_csv(&self) -> String {
        let escape = |s: &str| {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let mut out = String::new();
        out.push_str("label");
        for c in &self.columns {
            out.push(',');
            out.push_str(&escape(c));
        }
        out.push('\n');
        for r in &self.rows {
            out.push_str(&escape(&r.label));
            for v in &r.values {
                out.push(',');
                out.push_str(&format!("{v}"));
            }
            out.push('\n');
        }
        out
    }

    /// Render a horizontal ASCII bar chart of the table's first column
    /// (figure-style visualization for terminals). Returns the plain
    /// aligned table when the table has more than one column.
    #[must_use]
    pub fn render_bars(&self) -> String {
        if self.columns.len() != 1 || self.rows.is_empty() {
            return self.render();
        }
        let max = self
            .rows
            .iter()
            .map(|r| r.values[0].abs())
            .fold(0.0f64, f64::max)
            .max(1e-12);
        let label_w = self.rows.iter().map(|r| r.label.len()).max().unwrap_or(4);
        let mut out = format!("== {} — {} ==\n", self.id, self.title);
        for r in &self.rows {
            let v = r.values[0];
            let n = ((v.abs() / max) * 40.0).round() as usize;
            out.push_str(&format!(
                "{:label_w$} {:>10.3} {}\n",
                r.label,
                v,
                "█".repeat(n)
            ));
        }
        out
    }

    /// Render the table with aligned columns.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("== {} — {} ==\n", self.id, self.title));
        let label_w = self
            .rows
            .iter()
            .map(|r| r.label.len())
            .chain([5])
            .max()
            .unwrap_or(5)
            .max(4);
        let col_w = self
            .columns
            .iter()
            .map(|c| c.len().max(9))
            .collect::<Vec<_>>();
        out.push_str(&format!("{:label_w$}", ""));
        for (c, w) in self.columns.iter().zip(&col_w) {
            out.push_str(&format!(" {c:>w$}"));
        }
        out.push('\n');
        for r in &self.rows {
            out.push_str(&format!("{:label_w$}", r.label));
            for (v, w) in r.values.iter().zip(&col_w) {
                out.push_str(&format!(" {v:>w$.3}"));
            }
            out.push('\n');
        }
        out
    }
}

/// Summary of an empirical distribution (for the violin plots of
/// Figs. 14 and 15).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Distribution {
    /// Smallest sample.
    pub min: f64,
    /// 25th percentile.
    pub p25: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// 75th percentile.
    pub p75: f64,
    /// Largest sample.
    pub max: f64,
}

impl Distribution {
    /// Summarize `samples` (unsorted).
    ///
    /// An empty slice yields the all-zero [`Distribution::default`] —
    /// it never panics and never produces NaN. Callers that summarize
    /// possibly-empty populations (e.g. a stage with no barrier waits
    /// in the stall-attribution report) rely on this and must not need
    /// an emptiness guard of their own.
    #[must_use]
    pub fn from_samples(samples: &[f64]) -> Self {
        if samples.is_empty() {
            return Self::default();
        }
        let mut v = samples.to_vec();
        // lint: allow(no-panic) -- simulated metrics are finite by construction; a NaN here is a simulator bug worth crashing on
        v.sort_by(|a, b| a.partial_cmp(b).expect("finite samples"));
        Self {
            min: v[0],
            p25: percentile(&v, 25.0),
            mean: v.iter().sum::<f64>() / v.len() as f64,
            p75: percentile(&v, 75.0),
            max: v[v.len() - 1],
        }
    }
}

/// Percentile (0–100) of an ascending-sorted slice, with linear
/// interpolation.
///
/// # Panics
///
/// Panics if `sorted` is empty.
#[must_use]
pub fn percentile(sorted: &[f64], p: f64) -> f64 {
    assert!(!sorted.is_empty(), "need at least one sample");
    let clamped = p.clamp(0.0, 100.0);
    let rank = clamped / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    sorted[lo] + (sorted[hi] - sorted[lo]) * frac
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_roundtrip() {
        let mut t = Table::new("figX", "demo", vec!["a".into(), "b".into()]);
        t.push_row("CCS", vec![1.0, 2.0]);
        t.push_row("GTr", vec![3.0, 4.0]);
        t.push_mean_row();
        assert_eq!(t.get("CCS", "b"), Some(2.0));
        assert_eq!(t.get("Mean", "a"), Some(2.0));
        assert_eq!(t.get("Mean", "b"), Some(3.0));
        assert!(t.get("XXX", "a").is_none());
        assert!(t.get("CCS", "zz").is_none());
        let s = t.render();
        assert!(s.contains("figX"));
        assert!(s.contains("CCS"));
    }

    #[test]
    fn average_is_cellwise_mean() {
        let mut a = Table::new("t", "demo", vec!["v".into()]);
        a.push_row("x", vec![1.0]);
        a.push_row("y", vec![3.0]);
        let mut b = a.clone();
        b.rows[0].values[0] = 3.0;
        b.rows[1].values[0] = 5.0;
        let avg = Table::average(&[a.clone(), b]);
        assert_eq!(avg.get("x", "v"), Some(2.0));
        assert_eq!(avg.get("y", "v"), Some(4.0));
        // Averaging one table is the identity.
        assert_eq!(Table::average(&[a.clone()]), a);
    }

    #[test]
    // lint: typed-sibling(average_is_cellwise_mean)
    #[should_panic(expected = "row labels differ")]
    fn average_rejects_mismatched_rows() {
        let mut a = Table::new("t", "demo", vec!["v".into()]);
        a.push_row("x", vec![1.0]);
        let mut b = Table::new("t", "demo", vec!["v".into()]);
        b.push_row("y", vec![1.0]);
        let _ = Table::average(&[a, b]);
    }

    #[test]
    fn csv_escapes_and_lists_rows() {
        let mut t = Table::new("t", "demo", vec!["a,b".into(), "c".into()]);
        t.push_row("x\"y", vec![1.5, -2.0]);
        let csv = t.to_csv();
        assert!(csv.starts_with("label,\"a,b\",c\n"));
        assert!(csv.contains("\"x\"\"y\",1.5,-2\n"));
    }

    #[test]
    fn bars_render_single_column() {
        let mut t = Table::new("t", "demo", vec!["v".into()]);
        t.push_row("big", vec![10.0]);
        t.push_row("small", vec![2.5]);
        let s = t.render_bars();
        let big_bar = s.lines().find(|l| l.starts_with("big")).unwrap();
        let small_bar = s.lines().find(|l| l.starts_with("small")).unwrap();
        assert!(big_bar.matches('█').count() > small_bar.matches('█').count());
        // Multi-column tables fall back to the aligned rendering.
        let mut wide = Table::new("w", "w", vec!["a".into(), "b".into()]);
        wide.push_row("r", vec![1.0, 2.0]);
        assert!(wide.render_bars().contains("== w"));
    }

    #[test]
    // lint: typed-sibling(table_roundtrip)
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        let mut t = Table::new("t", "t", vec!["a".into()]);
        t.push_row("x", vec![1.0, 2.0]);
    }

    #[test]
    fn mean_row_on_empty_is_noop() {
        let mut t = Table::new("t", "t", vec!["a".into()]);
        t.push_mean_row();
        assert!(t.rows.is_empty());
    }

    #[test]
    fn distribution_summary() {
        let d = Distribution::from_samples(&[4.0, 1.0, 3.0, 2.0, 5.0]);
        assert_eq!(d.min, 1.0);
        assert_eq!(d.max, 5.0);
        assert_eq!(d.mean, 3.0);
        assert_eq!(d.p25, 2.0);
        assert_eq!(d.p75, 4.0);
        assert_eq!(Distribution::from_samples(&[]), Distribution::default());
    }

    #[test]
    fn distribution_of_empty_slice_is_all_zero_and_nan_free() {
        let d = Distribution::from_samples(&[]);
        for v in [d.min, d.p25, d.mean, d.p75, d.max] {
            assert_eq!(v, 0.0, "empty input must summarize to zeros, not NaN");
        }
        // A single sample degenerates to that sample everywhere — the
        // other boundary the stall report leans on.
        let one = Distribution::from_samples(&[7.5]);
        assert_eq!(
            (one.min, one.p25, one.mean, one.p75, one.max),
            (7.5, 7.5, 7.5, 7.5, 7.5)
        );
    }

    #[test]
    fn percentile_interpolates() {
        let v = [0.0, 10.0];
        assert_eq!(percentile(&v, 0.0), 0.0);
        assert_eq!(percentile(&v, 100.0), 10.0);
        assert_eq!(percentile(&v, 50.0), 5.0);
        assert_eq!(percentile(&[7.0], 99.0), 7.0);
    }
}
