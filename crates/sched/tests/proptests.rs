//! Property-based tests for schedules, orders and groupings.

use dtexl_sched::{
    AssignMode, MoveDir, NamedMapping, QuadGrouping, ScheduleConfig, TileOrder, TileSchedule,
};
use proptest::prelude::*;
use std::collections::HashSet;

fn any_order() -> impl Strategy<Value = TileOrder> {
    prop_oneof![
        Just(TileOrder::Scanline),
        Just(TileOrder::SOrder),
        Just(TileOrder::ZOrder),
        Just(TileOrder::HILBERT8),
        Just(TileOrder::Hilbert { sub: 4 }),
        Just(TileOrder::Spiral),
    ]
}

fn any_grouping() -> impl Strategy<Value = QuadGrouping> {
    proptest::sample::select(QuadGrouping::ALL.to_vec())
}

fn any_mode() -> impl Strategy<Value = AssignMode> {
    prop_oneof![
        Just(AssignMode::Const),
        Just(AssignMode::Flip1),
        Just(AssignMode::Flip2),
        Just(AssignMode::Flip3),
    ]
}

proptest! {
    /// Every tile order visits every tile of any frame exactly once.
    #[test]
    fn orders_are_permutations(order in any_order(), w in 1u32..40, h in 1u32..40) {
        let seq = order.sequence(w, h);
        let set: HashSet<_> = seq.iter().copied().collect();
        prop_assert_eq!(seq.len(), (w * h) as usize);
        prop_assert_eq!(set.len(), seq.len());
        prop_assert!(set.iter().all(|&(x, y)| x < w && y < h));
    }

    /// Every grouping maps every quad to a valid slot, and balances the
    /// 4 slots within one quad location count on even-sized tiles.
    #[test]
    fn groupings_partition_the_tile(g in any_grouping()) {
        let (w, h) = (16u32, 16u32);
        let mut counts = [0usize; 4];
        for qy in 0..h {
            for qx in 0..w {
                let s = g.subtile_of(qx, qy, w, h);
                prop_assert!(s < 4);
                counts[s] += 1;
            }
        }
        prop_assert_eq!(counts, [64, 64, 64, 64]);
    }

    /// Schedules always produce SC permutations for every tile,
    /// whatever the configuration and frame shape.
    #[test]
    fn schedules_always_permute(
        g in any_grouping(), o in any_order(), m in any_mode(),
        w in 1u32..24, h in 1u32..24,
    ) {
        let cfg = ScheduleConfig { grouping: g, order: o, assignment: m };
        let sched = TileSchedule::build(&cfg, w, h);
        prop_assert_eq!(sched.len(), (w * h) as usize);
        for i in 0..sched.len() {
            let mut a = sched.assignment(i);
            a.sort_unstable();
            prop_assert_eq!(a, [0, 1, 2, 3]);
        }
    }

    /// Edge-sharing invariant: for flip modes with the CG-square
    /// grouping, every adjacent transition keeps the SCs on the shared
    /// edge equal on both sides.
    #[test]
    fn flips_preserve_edge_sharing(
        m in prop_oneof![Just(AssignMode::Flip1), Just(AssignMode::Flip2)],
        o in any_order(),
        w in 2u32..20, h in 2u32..20,
    ) {
        let cfg = ScheduleConfig {
            grouping: QuadGrouping::CgSquare,
            order: o,
            assignment: m,
        };
        let sched = TileSchedule::build(&cfg, w, h);
        for i in 0..sched.len() - 1 {
            let (ma, mb) = (sched.assignment(i), sched.assignment(i + 1));
            match MoveDir::between(sched.tile(i), sched.tile(i + 1)) {
                MoveDir::Right => {
                    prop_assert_eq!(ma[1], mb[0]);
                    prop_assert_eq!(ma[3], mb[2]);
                }
                MoveDir::Left => {
                    prop_assert_eq!(ma[0], mb[1]);
                    prop_assert_eq!(ma[2], mb[3]);
                }
                MoveDir::Down => {
                    prop_assert_eq!(ma[2], mb[0]);
                    prop_assert_eq!(ma[3], mb[1]);
                }
                MoveDir::Up => {
                    prop_assert_eq!(ma[0], mb[2]);
                    prop_assert_eq!(ma[1], mb[3]);
                }
                MoveDir::Jump => {}
            }
        }
    }

    /// sc_of_quad is always a valid SC and consistent with the
    /// assignment table.
    #[test]
    fn sc_of_quad_consistent(
        mapping in proptest::sample::select(NamedMapping::FIG16.to_vec()),
        qx in 0u32..16, qy in 0u32..16,
        tile_frac in 0.0f64..1.0,
    ) {
        let sched = TileSchedule::build(&mapping.config(), 8, 6);
        let i = (tile_frac * sched.len() as f64) as usize % sched.len();
        let sc = sched.sc_of_quad(i, qx, qy, 16, 16);
        prop_assert!(sc < 4);
        let slot = mapping.config().grouping.subtile_of(qx, qy, 16, 16);
        prop_assert_eq!(sc, usize::from(sched.assignment(i)[slot]));
    }

    /// The schedule is a pure function of its configuration.
    #[test]
    fn schedules_deterministic(
        g in any_grouping(), o in any_order(), m in any_mode(),
        w in 1u32..16, h in 1u32..16,
    ) {
        let cfg = ScheduleConfig { grouping: g, order: o, assignment: m };
        let a = TileSchedule::build(&cfg, w, h);
        let b = TileSchedule::build(&cfg, w, h);
        prop_assert_eq!(a, b);
    }
}
