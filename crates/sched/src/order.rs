//! Tile traversal orders (Fig. 7).

use serde::{Deserialize, Serialize};

/// The order in which the tile fetcher feeds tiles to the raster
/// pipeline.
///
/// Tiles are independent, so any permutation is legal; the order decides
/// how much edge-sharing locality consecutive tiles expose to the L1
/// texture caches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TileOrder {
    /// Row-major, every row left→right.
    Scanline,
    /// Boustrophedon: row-major with alternating direction ("S" shape).
    SOrder,
    /// Morton / Z-order of the tile coordinates (the baseline of
    /// Table II).
    ZOrder,
    /// The paper's rectangle-adapted Hilbert order: a Hilbert curve over
    /// each `sub` × `sub`-tile sub-frame, with sub-frames traversed
    /// boustrophedonically.
    Hilbert {
        /// Sub-frame side length in tiles (the paper uses 8).
        sub: u32,
    },
    /// Inward rectangular spiral from the frame's top-left corner —
    /// a beyond-paper design-space probe: fully edge-continuous like
    /// S-order, but its shared edges rotate through all four directions.
    Spiral,
}

impl TileOrder {
    /// The paper's Hilbert configuration (8×8-tile sub-frames).
    pub const HILBERT8: Self = Self::Hilbert { sub: 8 };

    /// Generate the traversal as a sequence of `(tx, ty)` coordinates
    /// covering every tile of a `w × h` frame exactly once.
    ///
    /// # Panics
    ///
    /// Panics if `w == 0` or `h == 0`, or if a Hilbert `sub` is zero or
    /// not a power of two.
    #[must_use]
    pub fn sequence(&self, w: u32, h: u32) -> Vec<(u32, u32)> {
        assert!(w > 0 && h > 0, "frame must contain at least one tile");
        match *self {
            TileOrder::Scanline => (0..h).flat_map(|y| (0..w).map(move |x| (x, y))).collect(),
            TileOrder::SOrder => (0..h)
                .flat_map(|y| {
                    let row: Box<dyn Iterator<Item = u32>> = if y % 2 == 0 {
                        Box::new(0..w)
                    } else {
                        Box::new((0..w).rev())
                    };
                    row.map(move |x| (x, y))
                })
                .collect(),
            TileOrder::ZOrder => {
                let side = w.max(h).next_power_of_two() as u64;
                let mut seq = Vec::with_capacity((w * h) as usize);
                for m in 0..side * side {
                    let (x, y) = dtexl_texture::morton::decode(m);
                    if x < w && y < h {
                        seq.push((x, y));
                    }
                }
                seq
            }
            TileOrder::Hilbert { sub } => {
                assert!(
                    sub > 0 && sub.is_power_of_two(),
                    "Hilbert sub-frame side must be a power of two"
                );
                let sub_cols = w.div_ceil(sub);
                let sub_rows = h.div_ceil(sub);
                let mut seq = Vec::with_capacity((w * h) as usize);
                for sy in 0..sub_rows {
                    // Boustrophedon over sub-frames.
                    let cols: Box<dyn Iterator<Item = u32>> = if sy % 2 == 0 {
                        Box::new(0..sub_cols)
                    } else {
                        Box::new((0..sub_cols).rev())
                    };
                    for sx in cols {
                        for d in 0..u64::from(sub) * u64::from(sub) {
                            let (hx, hy) = hilbert_d2xy(sub, d);
                            let x = sx * sub + hx;
                            let y = sy * sub + hy;
                            if x < w && y < h {
                                seq.push((x, y));
                            }
                        }
                    }
                }
                seq
            }
            TileOrder::Spiral => {
                let mut seq = Vec::with_capacity((w * h) as usize);
                let (mut x0, mut y0) = (0i64, 0i64);
                let (mut x1, mut y1) = (i64::from(w) - 1, i64::from(h) - 1);
                while x0 <= x1 && y0 <= y1 {
                    for x in x0..=x1 {
                        seq.push((x as u32, y0 as u32));
                    }
                    for y in y0 + 1..=y1 {
                        seq.push((x1 as u32, y as u32));
                    }
                    if y1 > y0 {
                        for x in (x0..x1).rev() {
                            seq.push((x as u32, y1 as u32));
                        }
                    }
                    if x1 > x0 {
                        for y in (y0 + 1..y1).rev() {
                            seq.push((x0 as u32, y as u32));
                        }
                    }
                    x0 += 1;
                    y0 += 1;
                    x1 -= 1;
                    y1 -= 1;
                }
                seq
            }
        }
    }

    /// Human-readable name used in reports ("Z-order", "Hilbert", …).
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            TileOrder::Scanline => "Scanline",
            TileOrder::SOrder => "S-order",
            TileOrder::ZOrder => "Z-order",
            TileOrder::Hilbert { .. } => "Hilbert",
            TileOrder::Spiral => "Spiral",
        }
    }
}

/// Direction of the step between two consecutive tiles in a traversal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MoveDir {
    /// One tile to the right (+x): the tiles share a vertical edge.
    Right,
    /// One tile to the left (−x).
    Left,
    /// One tile down (+y): the tiles share a horizontal edge.
    Down,
    /// One tile up (−y).
    Up,
    /// Any non-adjacent step (diagonal or a jump).
    Jump,
}

impl MoveDir {
    /// Classify the step from tile `a` to tile `b`.
    #[must_use]
    pub fn between(a: (u32, u32), b: (u32, u32)) -> Self {
        let dx = i64::from(b.0) - i64::from(a.0);
        let dy = i64::from(b.1) - i64::from(a.1);
        match (dx, dy) {
            (1, 0) => MoveDir::Right,
            (-1, 0) => MoveDir::Left,
            (0, 1) => MoveDir::Down,
            (0, -1) => MoveDir::Up,
            _ => MoveDir::Jump,
        }
    }

    /// Whether the step crosses a shared tile edge.
    #[must_use]
    pub fn is_adjacent(&self) -> bool {
        !matches!(self, MoveDir::Jump)
    }

    /// Whether the step is horizontal (shares a vertical edge).
    #[must_use]
    pub fn is_horizontal(&self) -> bool {
        matches!(self, MoveDir::Right | MoveDir::Left)
    }
}

/// Map a distance `d` along a Hilbert curve of side `n` (power of two)
/// to `(x, y)` coordinates.
///
/// Classic non-recursive algorithm (Warren, "Hacker's Delight" style).
///
/// # Panics
///
/// Panics if `n` is zero or not a power of two.
///
/// # Examples
///
/// ```
/// use dtexl_sched::hilbert_d2xy;
/// // The first four points of the order-2 curve:
/// assert_eq!(hilbert_d2xy(2, 0), (0, 0));
/// assert_eq!(hilbert_d2xy(2, 1), (0, 1));
/// assert_eq!(hilbert_d2xy(2, 2), (1, 1));
/// assert_eq!(hilbert_d2xy(2, 3), (1, 0));
/// ```
#[must_use]
pub fn hilbert_d2xy(n: u32, d: u64) -> (u32, u32) {
    assert!(n > 0 && n.is_power_of_two(), "side must be a power of two");
    let (mut x, mut y) = (0u32, 0u32);
    let mut t = d;
    let mut s = 1u32;
    while s < n {
        let rx = ((t / 2) & 1) as u32;
        let ry = ((t ^ u64::from(rx)) & 1) as u32;
        // Rotate quadrant.
        if ry == 0 {
            if rx == 1 {
                x = s.wrapping_sub(1).wrapping_sub(x);
                y = s.wrapping_sub(1).wrapping_sub(y);
            }
            std::mem::swap(&mut x, &mut y);
        }
        x += s * rx;
        y += s * ry;
        t /= 4;
        s *= 2;
    }
    (x, y)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn is_permutation(seq: &[(u32, u32)], w: u32, h: u32) -> bool {
        let set: HashSet<_> = seq.iter().copied().collect();
        set.len() == seq.len()
            && seq.len() == (w * h) as usize
            && set.iter().all(|&(x, y)| x < w && y < h)
    }

    #[test]
    fn all_orders_are_permutations() {
        for order in [
            TileOrder::Scanline,
            TileOrder::SOrder,
            TileOrder::ZOrder,
            TileOrder::HILBERT8,
            TileOrder::Hilbert { sub: 4 },
            TileOrder::Spiral,
        ] {
            for (w, h) in [(1, 1), (4, 4), (8, 3), (62, 24), (5, 9)] {
                let seq = order.sequence(w, h);
                assert!(
                    is_permutation(&seq, w, h),
                    "{order:?} on {w}x{h} is not a permutation"
                );
            }
        }
    }

    #[test]
    fn scanline_is_row_major() {
        let seq = TileOrder::Scanline.sequence(3, 2);
        assert_eq!(seq, vec![(0, 0), (1, 0), (2, 0), (0, 1), (1, 1), (2, 1)]);
    }

    #[test]
    fn sorder_alternates_direction() {
        let seq = TileOrder::SOrder.sequence(3, 2);
        assert_eq!(seq, vec![(0, 0), (1, 0), (2, 0), (2, 1), (1, 1), (0, 1)]);
        // Every consecutive pair is edge-adjacent.
        for w in seq.windows(2) {
            assert!(MoveDir::between(w[0], w[1]).is_adjacent());
        }
    }

    #[test]
    fn zorder_matches_morton() {
        let seq = TileOrder::ZOrder.sequence(4, 4);
        assert_eq!(&seq[..4], &[(0, 0), (1, 0), (0, 1), (1, 1)]);
        assert_eq!(seq[4], (2, 0));
    }

    #[test]
    fn hilbert_curve_is_continuous() {
        let n = 8;
        let mut prev = hilbert_d2xy(n, 0);
        for d in 1..u64::from(n) * u64::from(n) {
            let cur = hilbert_d2xy(n, d);
            let dist = prev.0.abs_diff(cur.0) + prev.1.abs_diff(cur.1);
            assert_eq!(dist, 1, "Hilbert step {d} is not unit");
            prev = cur;
        }
    }

    #[test]
    fn hilbert_visits_all_cells() {
        let n = 16;
        let set: HashSet<_> = (0..u64::from(n) * u64::from(n))
            .map(|d| hilbert_d2xy(n, d))
            .collect();
        assert_eq!(set.len(), (n * n) as usize);
    }

    /// Locality measure: fraction of consecutive tile pairs that are
    /// edge-adjacent. Hilbert and S-order should beat scanline and
    /// Z-order on a typical frame.
    #[test]
    fn adjacency_ranking() {
        let (w, h) = (62, 24); // 1960x768 at 32x32 tiles (61.25 → 62 cols)
        let adj = |o: TileOrder| {
            let seq = o.sequence(w, h);
            let n = seq
                .windows(2)
                .filter(|p| MoveDir::between(p[0], p[1]).is_adjacent())
                .count();
            n as f64 / (seq.len() - 1) as f64
        };
        let scan = adj(TileOrder::Scanline);
        let s = adj(TileOrder::SOrder);
        let z = adj(TileOrder::ZOrder);
        let hb = adj(TileOrder::HILBERT8);
        assert!(s > z, "S-order {s} should beat Z-order {z}");
        assert!(hb > z, "Hilbert {hb} should beat Z-order {z}");
        assert!(s > scan, "S-order {s} should beat scanline {scan}");
        assert!(s >= 0.99, "S-order is fully continuous");
    }

    #[test]
    fn spiral_is_fully_continuous() {
        for (w, h) in [(1, 1), (5, 4), (8, 8), (7, 3), (2, 9)] {
            let seq = TileOrder::Spiral.sequence(w, h);
            for p in seq.windows(2) {
                assert!(
                    MoveDir::between(p[0], p[1]).is_adjacent(),
                    "{w}x{h}: jump from {:?} to {:?}",
                    p[0],
                    p[1]
                );
            }
            assert_eq!(seq[0], (0, 0), "starts at the corner");
        }
    }

    #[test]
    fn spiral_walks_the_perimeter_first() {
        let seq = TileOrder::Spiral.sequence(4, 3);
        assert_eq!(
            &seq[..9],
            &[
                (0, 0),
                (1, 0),
                (2, 0),
                (3, 0),
                (3, 1),
                (3, 2),
                (2, 2),
                (1, 2),
                (0, 2)
            ]
        );
    }

    #[test]
    fn move_dir_classification() {
        assert_eq!(MoveDir::between((1, 1), (2, 1)), MoveDir::Right);
        assert_eq!(MoveDir::between((1, 1), (0, 1)), MoveDir::Left);
        assert_eq!(MoveDir::between((1, 1), (1, 2)), MoveDir::Down);
        assert_eq!(MoveDir::between((1, 1), (1, 0)), MoveDir::Up);
        assert_eq!(MoveDir::between((1, 1), (2, 2)), MoveDir::Jump);
        assert_eq!(MoveDir::between((1, 1), (5, 1)), MoveDir::Jump);
        assert!(MoveDir::Right.is_horizontal());
        assert!(!MoveDir::Down.is_horizontal());
        assert!(MoveDir::Up.is_adjacent());
    }

    #[test]
    fn hilbert_accepts_pow2_sides() {
        // The checked counterpart of `hilbert_bad_side_panics`: every
        // power-of-two side is accepted and stays in bounds.
        for n in [1u32, 2, 4, 8] {
            for d in 0..u64::from(n) * u64::from(n) {
                let (x, y) = hilbert_d2xy(n, d);
                assert!(x < n && y < n);
            }
        }
    }

    #[test]
    // lint: typed-sibling(hilbert_accepts_pow2_sides)
    #[should_panic(expected = "power of two")]
    fn hilbert_bad_side_panics() {
        let _ = hilbert_d2xy(6, 0);
    }
}
