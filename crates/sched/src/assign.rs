//! Subtile-to-shader-core assignments (Fig. 8).

use crate::order::MoveDir;
use serde::{Deserialize, Serialize};

/// Spatial arrangement of the four subtile slots inside a tile.
///
/// Flip assignments mirror the slot→SC mapping across the edge shared
/// by consecutive tiles; what "mirroring" permutes depends on where the
/// slots physically sit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SlotLayout {
    /// Slots are the four quadrants: 0 = top-left, 1 = top-right,
    /// 2 = bottom-left, 3 = bottom-right (CG-square, CG-tri and all FG
    /// groupings).
    Grid2x2,
    /// Slots are four vertical bands, 0 = leftmost (CG-xrect).
    Columns,
    /// Slots are four horizontal bands, 0 = topmost (CG-yrect).
    Rows,
}

impl SlotLayout {
    /// Permutation applied to the slot→SC map when mirroring across a
    /// vertical shared edge (horizontal move): `new[i] = old[perm[i]]`.
    fn mirror_horizontal(&self) -> [usize; 4] {
        match self {
            // Swap left and right quadrants.
            SlotLayout::Grid2x2 => [1, 0, 3, 2],
            // Reverse the bands.
            SlotLayout::Columns => [3, 2, 1, 0],
            // Horizontal bands are unaffected by a horizontal mirror.
            SlotLayout::Rows => [0, 1, 2, 3],
        }
    }

    /// Permutation applied when mirroring across a horizontal shared
    /// edge (vertical move).
    fn mirror_vertical(&self) -> [usize; 4] {
        match self {
            SlotLayout::Grid2x2 => [2, 3, 0, 1],
            SlotLayout::Columns => [0, 1, 2, 3],
            SlotLayout::Rows => [3, 2, 1, 0],
        }
    }

    /// Permutation that swaps the two slots *not* on the shared edge
    /// among themselves (the extra exchange of flip2). For band layouts
    /// every slot moves on a mirror, so this is the identity.
    fn swap_non_shared(&self, dir: MoveDir) -> [usize; 4] {
        match (self, dir) {
            // After the mirror, the new tile's slots on the side *away*
            // from the shared edge hold the non-sharing SCs; exchanging
            // those two slots leaves the shared edge untouched. Which
            // side is "away" depends on the direction of travel.
            (SlotLayout::Grid2x2, MoveDir::Right) => [0, 3, 2, 1], // outer = right col (1,3)
            (SlotLayout::Grid2x2, MoveDir::Left) => [2, 1, 0, 3],  // outer = left col (0,2)
            (SlotLayout::Grid2x2, MoveDir::Down) => [0, 1, 3, 2],  // outer = bottom row (2,3)
            (SlotLayout::Grid2x2, MoveDir::Up) => [1, 0, 2, 3],    // outer = top row (0,1)
            _ => [0, 1, 2, 3],
        }
    }
}

fn apply(map: [u8; 4], perm: [usize; 4]) -> [u8; 4] {
    [map[perm[0]], map[perm[1]], map[perm[2]], map[perm[3]]]
}

/// The subtile assignment policy of Fig. 8.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AssignMode {
    /// `*-const`: slot *i* always goes to SC *i* (Fig. 8(a), (c), (g)).
    Const,
    /// `*-flp1`: mirror the mapping across the shared edge of every
    /// adjacent tile transition (Fig. 8(b), (d)); keeps edge-sharing
    /// subtiles on the same SC but permanently favors one SC.
    Flip1,
    /// `*-flp2`: flip1, plus on every second adjacent transition the two
    /// non-sharing slots also exchange places (Fig. 8(e)) — fair edge
    /// sharing over the frame. **DTexL's choice (HLB-flp2).**
    Flip2,
    /// `*-flp3`: flip1, plus a 180° rotation of all four slots every 16
    /// tiles (Fig. 8(f)).
    Flip3,
}

impl AssignMode {
    /// Short name used in mapping labels (`"const"`, `"flp2"`, …).
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            AssignMode::Const => "const",
            AssignMode::Flip1 => "flp1",
            AssignMode::Flip2 => "flp2",
            AssignMode::Flip3 => "flp3",
        }
    }
}

/// Stateful generator of per-tile slot→SC assignments along a tile
/// traversal.
///
/// # Examples
///
/// ```
/// use dtexl_sched::{AssignMode, MoveDir, SlotLayout, SubtileAssigner};
///
/// let mut a = SubtileAssigner::new(AssignMode::Flip1, SlotLayout::Grid2x2);
/// assert_eq!(a.first(), [0, 1, 2, 3]);
/// // Moving right mirrors left/right quadrants:
/// assert_eq!(a.next(MoveDir::Right), [1, 0, 3, 2]);
/// // Moving right again mirrors back:
/// assert_eq!(a.next(MoveDir::Right), [0, 1, 2, 3]);
/// ```
#[derive(Debug, Clone)]
pub struct SubtileAssigner {
    mode: AssignMode,
    layout: SlotLayout,
    /// Current slot→SC map.
    map: [u8; 4],
    /// Count of adjacent transitions (drives flip2's alternation).
    transitions: u64,
    /// Count of tiles emitted (drives flip3's 16-tile rotation).
    tiles: u64,
}

impl SubtileAssigner {
    /// Create an assigner at the start of a frame.
    #[must_use]
    pub fn new(mode: AssignMode, layout: SlotLayout) -> Self {
        Self {
            mode,
            layout,
            map: [0, 1, 2, 3],
            transitions: 0,
            tiles: 0,
        }
    }

    /// Assignment for the first tile of the traversal.
    pub fn first(&mut self) -> [u8; 4] {
        self.tiles = 1;
        self.map
    }

    /// Assignment for the next tile, reached via `dir` from the previous
    /// one.
    pub fn next(&mut self, dir: MoveDir) -> [u8; 4] {
        self.tiles += 1;
        if self.mode == AssignMode::Const {
            return self.map;
        }
        if dir.is_adjacent() {
            self.transitions += 1;
            let mirror = if dir.is_horizontal() {
                self.layout.mirror_horizontal()
            } else {
                self.layout.mirror_vertical()
            };
            self.map = apply(self.map, mirror);
            if self.mode == AssignMode::Flip2 && self.transitions.is_multiple_of(2) {
                self.map = apply(self.map, self.layout.swap_non_shared(dir));
            }
        }
        if self.mode == AssignMode::Flip3 && self.tiles.is_multiple_of(16) {
            // 180° rotation: both mirrors.
            self.map = apply(self.map, self.layout.mirror_horizontal());
            self.map = apply(self.map, self.layout.mirror_vertical());
        }
        self.map
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn is_perm(m: [u8; 4]) -> bool {
        let mut s = m;
        s.sort_unstable();
        s == [0, 1, 2, 3]
    }

    #[test]
    fn const_never_changes() {
        let mut a = SubtileAssigner::new(AssignMode::Const, SlotLayout::Grid2x2);
        assert_eq!(a.first(), [0, 1, 2, 3]);
        for dir in [MoveDir::Right, MoveDir::Down, MoveDir::Jump, MoveDir::Left] {
            assert_eq!(a.next(dir), [0, 1, 2, 3]);
        }
    }

    #[test]
    fn flip1_grid_right_matches_shared_edge() {
        let mut a = SubtileAssigner::new(AssignMode::Flip1, SlotLayout::Grid2x2);
        let t1 = a.first();
        let t2 = a.next(MoveDir::Right);
        // Tile1's right column slots are 1 (TR) and 3 (BR); tile2's left
        // column slots are 0 (TL) and 2 (BL). Edge sharing means they
        // carry the same SCs.
        assert_eq!(t1[1], t2[0]);
        assert_eq!(t1[3], t2[2]);
    }

    #[test]
    fn flip1_grid_down_matches_shared_edge() {
        let mut a = SubtileAssigner::new(AssignMode::Flip1, SlotLayout::Grid2x2);
        let t1 = a.first();
        let t2 = a.next(MoveDir::Down);
        // Tile1's bottom row (2, 3) meets tile2's top row (0, 1).
        assert_eq!(t1[2], t2[0]);
        assert_eq!(t1[3], t2[1]);
    }

    #[test]
    fn flip1_columns_reverse() {
        let mut a = SubtileAssigner::new(AssignMode::Flip1, SlotLayout::Columns);
        let t1 = a.first();
        let t2 = a.next(MoveDir::Right);
        // Rightmost band of tile1 (slot 3) meets leftmost band of tile2
        // (slot 0).
        assert_eq!(t1[3], t2[0]);
        // Vertical moves leave bands aligned: slot i meets slot i.
        let t3 = a.next(MoveDir::Down);
        assert_eq!(t2, t3);
    }

    #[test]
    fn flip2_alternates_the_extra_swap() {
        let mut a = SubtileAssigner::new(AssignMode::Flip2, SlotLayout::Grid2x2);
        let t1 = a.first();
        let t2 = a.next(MoveDir::Right); // transition 1: plain mirror
        let t3 = a.next(MoveDir::Right); // transition 2: mirror + swap
                                         // Shared edge still matches after the extra swap:
        assert_eq!(t2[1], t3[0], "edge sharing preserved on swap step");
        assert_eq!(t2[3], t3[2]);
        // And the non-sharing pair really did exchange relative to flip1:
        let mut b = SubtileAssigner::new(AssignMode::Flip1, SlotLayout::Grid2x2);
        b.first();
        b.next(MoveDir::Right);
        let f1_t3 = b.next(MoveDir::Right);
        assert_ne!(t3, f1_t3, "flip2 diverges from flip1 on even steps");
        let _ = t1;
    }

    #[test]
    fn all_modes_always_produce_permutations() {
        for mode in [
            AssignMode::Const,
            AssignMode::Flip1,
            AssignMode::Flip2,
            AssignMode::Flip3,
        ] {
            for layout in [SlotLayout::Grid2x2, SlotLayout::Columns, SlotLayout::Rows] {
                let mut a = SubtileAssigner::new(mode, layout);
                assert!(is_perm(a.first()));
                let dirs = [
                    MoveDir::Right,
                    MoveDir::Right,
                    MoveDir::Down,
                    MoveDir::Left,
                    MoveDir::Jump,
                    MoveDir::Up,
                    MoveDir::Right,
                ];
                for _ in 0..10 {
                    for &d in &dirs {
                        assert!(is_perm(a.next(d)), "{mode:?}/{layout:?}");
                    }
                }
            }
        }
    }

    #[test]
    fn flip1_favors_one_sc_flip2_is_fairer() {
        // Walk a Hilbert curve over a 16×16-tile frame; for every
        // transition, count which SCs hold the slots on the edge shared
        // with the next tile. HLB-flp1 must be biased (the paper: "SC4 is
        // favored to always have a shared edge"), HLB-flp2 close to
        // uniform (Fig. 8(e)).
        let walk: Vec<MoveDir> = {
            let n = 16u32;
            let coords: Vec<_> = (0..u64::from(n) * u64::from(n))
                .map(|d| crate::order::hilbert_d2xy(n, d))
                .collect();
            coords
                .windows(2)
                .map(|p| MoveDir::between(p[0], p[1]))
                .collect()
        };
        let shared_counts = |mode: AssignMode| -> [u32; 4] {
            let mut a = SubtileAssigner::new(mode, SlotLayout::Grid2x2);
            let mut counts = [0u32; 4];
            let mut map = a.first();
            for &dir in &walk {
                let edge_slots: [usize; 2] = match dir {
                    MoveDir::Right => [1, 3],
                    MoveDir::Left => [0, 2],
                    MoveDir::Down => [2, 3],
                    MoveDir::Up => [0, 1],
                    MoveDir::Jump => continue,
                };
                counts[map[edge_slots[0]] as usize] += 1;
                counts[map[edge_slots[1]] as usize] += 1;
                map = a.next(dir);
            }
            counts
        };
        let f1 = shared_counts(AssignMode::Flip1);
        let f2 = shared_counts(AssignMode::Flip2);
        let spread = |c: [u32; 4]| c.iter().max().unwrap() - c.iter().min().unwrap();
        assert!(
            spread(f1) > 2 * spread(f2),
            "flip1 spread {f1:?} must clearly exceed flip2 spread {f2:?}"
        );
    }

    #[test]
    fn flip3_rotates_every_16_tiles() {
        let mut a = SubtileAssigner::new(AssignMode::Flip3, SlotLayout::Grid2x2);
        let mut b = SubtileAssigner::new(AssignMode::Flip1, SlotLayout::Grid2x2);
        a.first();
        b.first();
        let mut diverged = false;
        for i in 2..=40u64 {
            let ma = a.next(MoveDir::Right);
            let mb = b.next(MoveDir::Right);
            if i >= 16 && ma != mb {
                diverged = true;
            }
        }
        assert!(diverged, "flip3 must diverge from flip1 after 16 tiles");
    }

    #[test]
    fn jumps_do_not_flip() {
        let mut a = SubtileAssigner::new(AssignMode::Flip1, SlotLayout::Grid2x2);
        let t1 = a.first();
        assert_eq!(a.next(MoveDir::Jump), t1, "no shared edge, no flip");
    }

    #[test]
    fn mode_names() {
        assert_eq!(AssignMode::Const.name(), "const");
        assert_eq!(AssignMode::Flip2.name(), "flp2");
    }
}
