//! End-to-end tile schedules: order + grouping + assignment.

use crate::assign::{AssignMode, SubtileAssigner};
use crate::grouping::QuadGrouping;
use crate::order::{MoveDir, TileOrder};
use serde::{Deserialize, Serialize};

/// Complete description of a workload schedule: which quads form
/// subtiles, in which order tiles are processed, and which shader core
/// each subtile goes to.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScheduleConfig {
    /// Quad → subtile-slot mapping inside each tile.
    pub grouping: QuadGrouping,
    /// Tile traversal order.
    pub order: TileOrder,
    /// Subtile-slot → shader-core assignment policy.
    pub assignment: AssignMode,
}

impl ScheduleConfig {
    /// The paper's baseline: FG-xshift2 quads, Z-order tiles, constant
    /// assignment (Table II).
    #[must_use]
    pub fn baseline() -> Self {
        Self {
            grouping: QuadGrouping::FgXShift2,
            order: TileOrder::ZOrder,
            assignment: AssignMode::Const,
        }
    }

    /// DTexL's chosen configuration: CG-square quads, Hilbert tile
    /// order, flip2 assignment (HLB-flp2).
    #[must_use]
    pub fn dtexl() -> Self {
        Self {
            grouping: QuadGrouping::CgSquare,
            order: TileOrder::HILBERT8,
            assignment: AssignMode::Flip2,
        }
    }

    /// Short label such as `"CG-square/Hilbert/flp2"`.
    #[must_use]
    pub fn label(&self) -> String {
        format!(
            "{}/{}/{}",
            self.grouping.name(),
            self.order.name(),
            self.assignment.name()
        )
    }
}

/// A schedule name that did not resolve to any known configuration.
///
/// Produced by [`ScheduleConfig`]'s [`FromStr`](std::str::FromStr)
/// implementation; its `Display` lists the accepted names so CLI users
/// see the valid vocabulary in the error itself.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseScheduleError {
    /// The name that failed to parse.
    pub name: String,
}

impl std::fmt::Display for ParseScheduleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let known: Vec<&str> = crate::NamedMapping::ALL.iter().map(|m| m.name()).collect();
        write!(
            f,
            "unknown schedule {:?}: expected \"baseline\", \"dtexl\", or one of {}",
            self.name,
            known.join(", ")
        )
    }
}

impl std::error::Error for ParseScheduleError {}

impl std::str::FromStr for ScheduleConfig {
    type Err = ParseScheduleError;

    /// Parse a schedule by name, case-insensitively: the aliases
    /// `"baseline"` and `"dtexl"`, or any paper label accepted by
    /// [`NamedMapping::from_name`](crate::NamedMapping::from_name)
    /// (e.g. `"HLB-flp2"`).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let name = s.trim();
        if name.eq_ignore_ascii_case("baseline") {
            return Ok(Self::baseline());
        }
        if name.eq_ignore_ascii_case("dtexl") {
            return Ok(Self::dtexl());
        }
        crate::NamedMapping::from_name(name)
            .map(|m| m.config())
            .ok_or_else(|| ParseScheduleError { name: name.into() })
    }
}

/// A materialized schedule for one frame: the tile sequence plus the
/// per-tile slot→SC assignment.
///
/// # Examples
///
/// ```
/// use dtexl_sched::{ScheduleConfig, TileSchedule};
/// let sched = TileSchedule::build(&ScheduleConfig::dtexl(), 8, 8);
/// assert_eq!(sched.len(), 64);
/// let (tx, ty) = sched.tile(0);
/// assert!(tx < 8 && ty < 8);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TileSchedule {
    config: ScheduleConfig,
    tiles: Vec<(u32, u32)>,
    assignments: Vec<[u8; 4]>,
}

impl TileSchedule {
    /// Build a schedule for a frame of `tiles_w × tiles_h` tiles.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    #[must_use]
    pub fn build(config: &ScheduleConfig, tiles_w: u32, tiles_h: u32) -> Self {
        let tiles = config.order.sequence(tiles_w, tiles_h);
        let mut assigner = SubtileAssigner::new(config.assignment, config.grouping.slot_layout());
        let mut assignments = Vec::with_capacity(tiles.len());
        assignments.push(assigner.first());
        for pair in tiles.windows(2) {
            assignments.push(assigner.next(MoveDir::between(pair[0], pair[1])));
        }
        Self {
            config: *config,
            tiles,
            assignments,
        }
    }

    /// The schedule's configuration.
    #[must_use]
    pub fn config(&self) -> &ScheduleConfig {
        &self.config
    }

    /// Number of tiles in the frame.
    #[must_use]
    pub fn len(&self) -> usize {
        self.tiles.len()
    }

    /// Whether the frame has no tiles (never true for valid builds).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.tiles.is_empty()
    }

    /// Coordinates of the `i`-th tile in traversal order.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    #[must_use]
    pub fn tile(&self, i: usize) -> (u32, u32) {
        self.tiles[i]
    }

    /// Slot→SC assignment of the `i`-th tile.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    #[must_use]
    pub fn assignment(&self, i: usize) -> [u8; 4] {
        self.assignments[i]
    }

    /// Shader core for a quad at `(qx, qy)` within the `i`-th tile
    /// (quad coordinates local to the tile).
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()` or the quad is out of range (debug).
    #[must_use]
    pub fn sc_of_quad(&self, i: usize, qx: u32, qy: u32, quads_w: u32, quads_h: u32) -> usize {
        let slot = self.config.grouping.subtile_of(qx, qy, quads_w, quads_h);
        usize::from(self.assignments[i][slot])
    }

    /// Iterate over `(tile_index, (tx, ty), assignment)`.
    pub fn iter(&self) -> impl Iterator<Item = (usize, (u32, u32), [u8; 4])> + '_ {
        self.tiles
            .iter()
            .zip(&self.assignments)
            .enumerate()
            .map(|(i, (&t, &a))| (i, t, a))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_and_dtexl_configs() {
        let b = ScheduleConfig::baseline();
        assert_eq!(b.label(), "FG-xshift2/Z-order/const");
        let d = ScheduleConfig::dtexl();
        assert_eq!(d.label(), "CG-square/Hilbert/flp2");
    }

    #[test]
    fn parses_aliases_and_paper_names() {
        assert_eq!(
            "baseline".parse::<ScheduleConfig>().unwrap(),
            ScheduleConfig::baseline()
        );
        assert_eq!(
            "DTexL".parse::<ScheduleConfig>().unwrap(),
            ScheduleConfig::dtexl()
        );
        assert_eq!(
            "hlb-flp2".parse::<ScheduleConfig>().unwrap(),
            ScheduleConfig::dtexl()
        );
        assert_eq!(
            " Sorder-const ".parse::<ScheduleConfig>().unwrap(),
            crate::NamedMapping::SorderConst.config()
        );
    }

    #[test]
    fn unknown_schedule_error_lists_vocabulary() {
        let err = "bogus".parse::<ScheduleConfig>().unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("bogus"));
        assert!(msg.contains("baseline"));
        assert!(msg.contains("HLB-flp2"));
    }

    #[test]
    fn build_covers_all_tiles_with_permutations() {
        let sched = TileSchedule::build(&ScheduleConfig::dtexl(), 10, 6);
        assert_eq!(sched.len(), 60);
        assert!(!sched.is_empty());
        for (_, (tx, ty), assign) in sched.iter() {
            assert!(tx < 10 && ty < 6);
            let mut a = assign;
            a.sort_unstable();
            assert_eq!(a, [0, 1, 2, 3]);
        }
    }

    #[test]
    fn const_assignment_is_identity_everywhere() {
        let sched = TileSchedule::build(&ScheduleConfig::baseline(), 8, 8);
        for i in 0..sched.len() {
            assert_eq!(sched.assignment(i), [0, 1, 2, 3]);
        }
    }

    #[test]
    fn flip_assignment_varies() {
        let sched = TileSchedule::build(&ScheduleConfig::dtexl(), 8, 8);
        let distinct: std::collections::HashSet<_> =
            (0..sched.len()).map(|i| sched.assignment(i)).collect();
        assert!(distinct.len() > 1, "flip2 must change the mapping");
    }

    #[test]
    fn sc_of_quad_composes_grouping_and_assignment() {
        let cfg = ScheduleConfig {
            grouping: QuadGrouping::CgSquare,
            order: TileOrder::SOrder,
            assignment: AssignMode::Flip1,
        };
        let sched = TileSchedule::build(&cfg, 4, 1);
        // Tile 0: identity → top-left quadrant = SC 0.
        assert_eq!(sched.sc_of_quad(0, 0, 0, 16, 16), 0);
        assert_eq!(sched.sc_of_quad(0, 15, 15, 16, 16), 3);
        // Tile 1 (one step right): mirrored → top-left quadrant = SC 1.
        assert_eq!(sched.sc_of_quad(1, 0, 0, 16, 16), 1);
    }

    #[test]
    fn edge_sharing_holds_along_hilbert_flip1() {
        // For every horizontally adjacent transition, the slots that meet
        // at the shared edge carry the same SCs.
        let cfg = ScheduleConfig {
            grouping: QuadGrouping::CgSquare,
            order: TileOrder::HILBERT8,
            assignment: AssignMode::Flip1,
        };
        let sched = TileSchedule::build(&cfg, 8, 8);
        for i in 0..sched.len() - 1 {
            let a = sched.tile(i);
            let b = sched.tile(i + 1);
            let (ma, mb) = (sched.assignment(i), sched.assignment(i + 1));
            match MoveDir::between(a, b) {
                MoveDir::Right => {
                    assert_eq!(ma[1], mb[0]);
                    assert_eq!(ma[3], mb[2]);
                }
                MoveDir::Left => {
                    assert_eq!(ma[0], mb[1]);
                    assert_eq!(ma[2], mb[3]);
                }
                MoveDir::Down => {
                    assert_eq!(ma[2], mb[0]);
                    assert_eq!(ma[3], mb[1]);
                }
                MoveDir::Up => {
                    assert_eq!(ma[0], mb[2]);
                    assert_eq!(ma[1], mb[3]);
                }
                MoveDir::Jump => {}
            }
        }
    }
}
