//! Tile orders, quad groupings and subtile assignments for DTexL.
//!
//! This crate implements the paper's entire scheduling design space:
//!
//! * **Quad groupings** (Fig. 6, [`QuadGrouping`]) — the static mapping
//!   from a quad's position inside a tile to one of the four subtiles.
//!   Six fine-grained (FG) interleavings favor load balance; four
//!   coarse-grained (CG) shapes (rectangles, triangles, squares) favor
//!   texture locality.
//! * **Tile orders** (Fig. 7, [`TileOrder`]) — the order in which the
//!   raster pipeline consumes tiles: scanline, boustrophedon S-order,
//!   Z-order (Morton), and the paper's rectangle-adapted Hilbert order
//!   (Hilbert on 8×8-tile sub-frames, sub-frames traversed in an S).
//! * **Subtile assignments** (Fig. 8, [`AssignMode`]) — the per-tile
//!   permutation from subtile slots to shader cores: `const`, and the
//!   `flip1`/`flip2`/`flip3` mirrorings that keep subtiles sharing a
//!   tile edge on the same shader core without permanently favoring any
//!   core.
//! * **Named mappings** ([`NamedMapping`]) — the eight end-to-end
//!   configurations evaluated in Fig. 16 (`Zorder-const` … `Sorder-flp`)
//!   plus the fine-grained baseline.
//!
//! # Examples
//!
//! ```
//! use dtexl_sched::{NamedMapping, TileSchedule};
//!
//! // The full DTexL schedule for a 8×4-tile frame:
//! let cfg = NamedMapping::HilbertFlip2.config();
//! let sched = TileSchedule::build(&cfg, 8, 4);
//! assert_eq!(sched.len(), 32);
//! // Every tile knows which shader core each subtile slot goes to:
//! let scs = sched.assignment(0);
//! let mut sorted = scs;
//! sorted.sort_unstable();
//! assert_eq!(sorted, [0, 1, 2, 3], "a permutation of the four SCs");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod assign;
mod grouping;
mod order;
mod presets;
mod schedule;

pub use assign::{AssignMode, SlotLayout, SubtileAssigner};
pub use grouping::QuadGrouping;
pub use order::{hilbert_d2xy, MoveDir, TileOrder};
pub use presets::NamedMapping;
pub use schedule::{ParseScheduleError, ScheduleConfig, TileSchedule};

/// Number of parallel raster pipelines / shader cores in the modeled GPU
/// (the paper fixes this to four).
pub const NUM_SC: usize = 4;
