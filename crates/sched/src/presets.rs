//! The named end-to-end mappings evaluated in the paper (Fig. 8 /
//! Fig. 16).

use crate::assign::AssignMode;
use crate::grouping::QuadGrouping;
use crate::order::TileOrder;
use crate::schedule::ScheduleConfig;
use serde::{Deserialize, Serialize};

/// The eight subtile mappings of Fig. 16, plus the fine-grained
/// baseline.
///
/// | Name | Grouping | Tile order | Assignment |
/// |---|---|---|---|
/// | `Baseline` | FG-xshift2 | Z-order | const |
/// | `ZorderConst` | CG-square | Z-order | const |
/// | `ZorderFlip` | CG-square | Z-order | flp1 |
/// | `HilbertConst` | CG-square | Hilbert | const |
/// | `HilbertFlip1` | CG-square | Hilbert | flp1 |
/// | `HilbertFlip2` | CG-square | Hilbert | flp2 (**DTexL**) |
/// | `HilbertFlip3` | CG-square | Hilbert | flp3 |
/// | `SorderConst` | CG-yrect | S-order | const |
/// | `SorderFlip` | CG-yrect | S-order | flp1 |
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NamedMapping {
    /// FG-xshift2 + Z-order + const: the load-balancing baseline.
    Baseline,
    /// CG-square + Z-order + const (Fig. 8(a)).
    ZorderConst,
    /// CG-square + Z-order + flp1 (Fig. 8(b)).
    ZorderFlip,
    /// CG-square + Hilbert + const (Fig. 8(c)).
    HilbertConst,
    /// CG-square + Hilbert + flp1 (Fig. 8(d)).
    HilbertFlip1,
    /// CG-square + Hilbert + flp2 (Fig. 8(e)) — DTexL's configuration.
    HilbertFlip2,
    /// CG-square + Hilbert + flp3 (Fig. 8(f)).
    HilbertFlip3,
    /// CG-yrect + S-order + const (Fig. 8(g)).
    SorderConst,
    /// CG-yrect + S-order + flp1 (Fig. 8(h)).
    SorderFlip,
}

impl NamedMapping {
    /// The eight evaluated mappings of Fig. 16, in plot order.
    pub const FIG16: [Self; 8] = [
        Self::ZorderConst,
        Self::ZorderFlip,
        Self::HilbertConst,
        Self::HilbertFlip1,
        Self::HilbertFlip2,
        Self::HilbertFlip3,
        Self::SorderConst,
        Self::SorderFlip,
    ];

    /// The paper's label for the mapping (e.g. `"HLB-flp2"`).
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            Self::Baseline => "FG-xshift2",
            Self::ZorderConst => "Zorder-const",
            Self::ZorderFlip => "Zorder-flp",
            Self::HilbertConst => "HLB-const",
            Self::HilbertFlip1 => "HLB-flp1",
            Self::HilbertFlip2 => "HLB-flp2",
            Self::HilbertFlip3 => "HLB-flp3",
            Self::SorderConst => "Sorder-const",
            Self::SorderFlip => "Sorder-flp",
        }
    }

    /// All named mappings, including the fine-grained baseline.
    pub const ALL: [Self; 9] = [
        Self::Baseline,
        Self::ZorderConst,
        Self::ZorderFlip,
        Self::HilbertConst,
        Self::HilbertFlip1,
        Self::HilbertFlip2,
        Self::HilbertFlip3,
        Self::SorderConst,
        Self::SorderFlip,
    ];

    /// Look up a mapping by its paper label (case-insensitive), e.g.
    /// `"HLB-flp2"`.
    #[must_use]
    pub fn from_name(name: &str) -> Option<Self> {
        Self::ALL
            .into_iter()
            .find(|m| m.name().eq_ignore_ascii_case(name))
    }

    /// The full schedule configuration for this mapping.
    #[must_use]
    pub fn config(&self) -> ScheduleConfig {
        match self {
            Self::Baseline => ScheduleConfig::baseline(),
            Self::ZorderConst => ScheduleConfig {
                grouping: QuadGrouping::CgSquare,
                order: TileOrder::ZOrder,
                assignment: AssignMode::Const,
            },
            Self::ZorderFlip => ScheduleConfig {
                grouping: QuadGrouping::CgSquare,
                order: TileOrder::ZOrder,
                assignment: AssignMode::Flip1,
            },
            Self::HilbertConst => ScheduleConfig {
                grouping: QuadGrouping::CgSquare,
                order: TileOrder::HILBERT8,
                assignment: AssignMode::Const,
            },
            Self::HilbertFlip1 => ScheduleConfig {
                grouping: QuadGrouping::CgSquare,
                order: TileOrder::HILBERT8,
                assignment: AssignMode::Flip1,
            },
            Self::HilbertFlip2 => ScheduleConfig::dtexl(),
            Self::HilbertFlip3 => ScheduleConfig {
                grouping: QuadGrouping::CgSquare,
                order: TileOrder::HILBERT8,
                assignment: AssignMode::Flip3,
            },
            Self::SorderConst => ScheduleConfig {
                grouping: QuadGrouping::CgYRect,
                order: TileOrder::SOrder,
                assignment: AssignMode::Const,
            },
            Self::SorderFlip => ScheduleConfig {
                grouping: QuadGrouping::CgYRect,
                order: TileOrder::SOrder,
                assignment: AssignMode::Flip1,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig16_has_eight_mappings() {
        assert_eq!(NamedMapping::FIG16.len(), 8);
        let names: Vec<_> = NamedMapping::FIG16.iter().map(|m| m.name()).collect();
        assert!(names.contains(&"HLB-flp2"));
        assert!(names.contains(&"Sorder-const"));
        assert!(!names.contains(&"FG-xshift2"));
    }

    #[test]
    fn dtexl_is_hilbert_flip2() {
        assert_eq!(NamedMapping::HilbertFlip2.config(), ScheduleConfig::dtexl());
    }

    #[test]
    fn sorder_mappings_use_yrect() {
        assert_eq!(
            NamedMapping::SorderConst.config().grouping,
            QuadGrouping::CgYRect
        );
        assert_eq!(NamedMapping::SorderFlip.config().order, TileOrder::SOrder);
    }

    #[test]
    fn all_fig16_use_coarse_grouping() {
        for m in NamedMapping::FIG16 {
            assert!(
                !m.config().grouping.is_fine_grained(),
                "{} must be coarse-grained",
                m.name()
            );
        }
    }
}
