//! Quad groupings (Fig. 6): mapping quads inside a tile to subtiles.

use serde::{Deserialize, Serialize};

/// The static mapping from a quad's position within a tile to one of the
/// four subtile slots (and hence, via the subtile assignment, to a
/// shader core).
///
/// Fine-grained (FG) groupings interleave adjacent quads across slots —
/// good load balance, poor texture locality. Coarse-grained (CG)
/// groupings keep spatially contiguous regions on one slot — good
/// locality, poor balance. This is the central trade-off of the paper.
///
/// Coordinates below are quad coordinates inside the tile
/// (`0..quads_w`, `0..quads_h`; 16×16 for a 32×32-pixel tile).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum QuadGrouping {
    /// Fig. 6(a): 2×2 checker — `(qx%2) + 2*(qy%2)`. No two adjacent
    /// (even diagonally adjacent) quads share a slot.
    FgChecker,
    /// Fig. 6(b): rows of `0123` shifted by two each row —
    /// `(qx + 2*qy) % 4`. No adjacent quad shares a slot. **The paper's
    /// load-balancing baseline (FG-xshift2).**
    FgXShift2,
    /// Fig. 6(c): diagonal stripes `(qx + qy) % 4` — at most two
    /// diagonal neighbors share a slot.
    FgDiag,
    /// Fig. 6(d): anti-diagonal stripes `(qx - qy) mod 4`.
    FgAntiDiag,
    /// Fig. 6(e): `0123` rows shifted by two every *two* rows —
    /// `(qx + 2*(qy/2)) % 4`; at most two vertical neighbors share a
    /// slot.
    FgXShift2V,
    /// Fig. 6(f): transpose of (e) — `(qy + 2*(qx/2)) % 4`; at most two
    /// horizontal neighbors share a slot.
    FgYShift2H,
    /// Fig. 6(g): four full-height vertical bands (each `quads_w/4` ×
    /// `quads_h`), i.e. rectangles running along x.
    CgXRect,
    /// Fig. 6(h): four full-width horizontal bands (each `quads_w` ×
    /// `quads_h/4`), stacked along y. Horizontally-elongated bands have
    /// the most horizontal adjacency, which §V-A observes gives the
    /// best texture locality among the rectangles.
    CgYRect,
    /// Fig. 6(i): four triangles cut by the tile's two diagonals
    /// (top, right, bottom, left).
    CgTri,
    /// Fig. 6(j): four square quadrants (2×2 blocks of `quads_w/2` ×
    /// `quads_h/2`). **The paper's locality representative
    /// (CG-square).**
    CgSquare,
}

impl QuadGrouping {
    /// All groupings in the order of Fig. 11/Fig. 12 (fine-grained
    /// first).
    pub const ALL: [Self; 10] = [
        Self::FgChecker,
        Self::FgXShift2,
        Self::FgDiag,
        Self::FgAntiDiag,
        Self::FgXShift2V,
        Self::FgYShift2H,
        Self::CgXRect,
        Self::CgYRect,
        Self::CgTri,
        Self::CgSquare,
    ];

    /// Whether this is one of the fine-grained interleavings.
    #[must_use]
    pub fn is_fine_grained(&self) -> bool {
        matches!(
            self,
            Self::FgChecker
                | Self::FgXShift2
                | Self::FgDiag
                | Self::FgAntiDiag
                | Self::FgXShift2V
                | Self::FgYShift2H
        )
    }

    /// The paper's name for the grouping (e.g. `"FG-xshift2"`).
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            Self::FgChecker => "FG-checker",
            Self::FgXShift2 => "FG-xshift2",
            Self::FgDiag => "FG-diag",
            Self::FgAntiDiag => "FG-antidiag",
            Self::FgXShift2V => "FG-xshift2v",
            Self::FgYShift2H => "FG-yshift2h",
            Self::CgXRect => "CG-xrect",
            Self::CgYRect => "CG-yrect",
            Self::CgTri => "CG-tri",
            Self::CgSquare => "CG-square",
        }
    }

    /// The subtile slot layout this grouping produces (drives how flips
    /// mirror the assignment).
    #[must_use]
    pub fn slot_layout(&self) -> crate::SlotLayout {
        match self {
            Self::CgXRect => crate::SlotLayout::Columns,
            Self::CgYRect => crate::SlotLayout::Rows,
            _ => crate::SlotLayout::Grid2x2,
        }
    }

    /// Subtile slot (0..4) of the quad at `(qx, qy)` in a tile of
    /// `quads_w × quads_h` quads.
    ///
    /// # Panics
    ///
    /// Panics in debug builds when the coordinates are out of range.
    #[must_use]
    pub fn subtile_of(&self, qx: u32, qy: u32, quads_w: u32, quads_h: u32) -> usize {
        debug_assert!(qx < quads_w && qy < quads_h);
        let slot = match self {
            Self::FgChecker => (qx % 2) + 2 * (qy % 2),
            Self::FgXShift2 => (qx + 2 * qy) % 4,
            Self::FgDiag => (qx + qy) % 4,
            Self::FgAntiDiag => (qx + 3 * qy) % 4,
            Self::FgXShift2V => (qx + 2 * (qy / 2)) % 4,
            Self::FgYShift2H => (qy + 2 * (qx / 2)) % 4,
            Self::CgXRect => (4 * qx / quads_w).min(3),
            Self::CgYRect => (4 * qy / quads_h).min(3),
            Self::CgTri => {
                // Signed side of the two diagonals, using quad centers
                // in exact integer arithmetic: main diagonal v = u,
                // anti-diagonal v = 1 - u.
                let (w, h) = (i64::from(quads_w), i64::from(quads_h));
                let (cx, cy) = (2 * i64::from(qx) + 1, 2 * i64::from(qy) + 1);
                let main = cy * w - cx * h; // < 0 above the main diagonal
                let anti = cy * w + cx * h - 2 * w * h; // < 0 above the anti-diagonal
                if main == 0 {
                    // On the main diagonal: alternate top/left so the
                    // four triangles stay exactly balanced.
                    if qx.is_multiple_of(2) {
                        0
                    } else {
                        2
                    }
                } else if anti == 0 {
                    // On the anti-diagonal: alternate right/bottom.
                    if qx.is_multiple_of(2) {
                        1
                    } else {
                        3
                    }
                } else {
                    match (main < 0, anti < 0) {
                        (true, true) => 0,   // top triangle
                        (true, false) => 1,  // right triangle
                        (false, true) => 2,  // left triangle
                        (false, false) => 3, // bottom triangle
                    }
                }
            }
            Self::CgSquare => {
                let hx = u32::from(qx >= quads_w / 2);
                let hy = u32::from(qy >= quads_h / 2);
                hx + 2 * hy
            }
        };
        slot as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const W: u32 = 16;
    const H: u32 = 16;

    fn slot_counts(g: QuadGrouping) -> [usize; 4] {
        let mut counts = [0usize; 4];
        for qy in 0..H {
            for qx in 0..W {
                counts[g.subtile_of(qx, qy, W, H)] += 1;
            }
        }
        counts
    }

    #[test]
    fn every_grouping_balances_quad_counts() {
        // With a uniform tile (no overdraw), all groupings assign an
        // equal number of quad *locations* to each slot.
        for g in QuadGrouping::ALL {
            let counts = slot_counts(g);
            assert_eq!(counts, [64, 64, 64, 64], "{} uneven: {counts:?}", g.name());
        }
    }

    #[test]
    fn fg_xshift2_has_no_adjacent_duplicates() {
        let g = QuadGrouping::FgXShift2;
        for qy in 0..H {
            for qx in 0..W {
                let s = g.subtile_of(qx, qy, W, H);
                for (dx, dy) in [(1i64, 0i64), (0, 1), (1, 1), (1, -1)] {
                    let (nx, ny) = (qx as i64 + dx, qy as i64 + dy);
                    if nx >= 0 && ny >= 0 && (nx as u32) < W && (ny as u32) < H {
                        assert_ne!(
                            s,
                            g.subtile_of(nx as u32, ny as u32, W, H),
                            "adjacent quads ({qx},{qy}) and ({nx},{ny}) share a slot"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn fg_checker_has_no_adjacent_duplicates() {
        let g = QuadGrouping::FgChecker;
        for qy in 0..H - 1 {
            for qx in 0..W - 1 {
                let s = g.subtile_of(qx, qy, W, H);
                assert_ne!(s, g.subtile_of(qx + 1, qy, W, H));
                assert_ne!(s, g.subtile_of(qx, qy + 1, W, H));
                assert_ne!(s, g.subtile_of(qx + 1, qy + 1, W, H));
            }
        }
    }

    #[test]
    fn fg_diag_allows_only_diagonal_duplicates() {
        let g = QuadGrouping::FgDiag;
        for qy in 0..H - 1 {
            for qx in 0..W - 1 {
                let s = g.subtile_of(qx, qy, W, H);
                assert_ne!(s, g.subtile_of(qx + 1, qy, W, H), "horizontal differs");
                assert_ne!(s, g.subtile_of(qx, qy + 1, W, H), "vertical differs");
            }
        }
        // Anti-diagonal neighbor is the same slot:
        assert_eq!(
            g.subtile_of(3, 2, W, H),
            g.subtile_of(4, 1, W, H),
            "diagonal duplicate expected"
        );
    }

    #[test]
    fn fg_xshift2v_allows_two_vertical() {
        let g = QuadGrouping::FgXShift2V;
        // Within a row pair, vertical neighbors share a slot…
        assert_eq!(g.subtile_of(5, 0, W, H), g.subtile_of(5, 1, W, H));
        // …but not across row pairs.
        assert_ne!(g.subtile_of(5, 1, W, H), g.subtile_of(5, 2, W, H));
        // Horizontal neighbors always differ.
        assert_ne!(g.subtile_of(5, 0, W, H), g.subtile_of(6, 0, W, H));
    }

    #[test]
    fn cg_square_quadrants() {
        let g = QuadGrouping::CgSquare;
        assert_eq!(g.subtile_of(0, 0, W, H), 0);
        assert_eq!(g.subtile_of(15, 0, W, H), 1);
        assert_eq!(g.subtile_of(0, 15, W, H), 2);
        assert_eq!(g.subtile_of(15, 15, W, H), 3);
        // Quadrants are contiguous 8×8 blocks.
        assert_eq!(g.subtile_of(7, 7, W, H), 0);
        assert_eq!(g.subtile_of(8, 7, W, H), 1);
    }

    #[test]
    fn cg_rect_bands() {
        // yrect: full-width bands stacked along y.
        let y = QuadGrouping::CgYRect;
        assert_eq!(y.subtile_of(0, 0, W, H), 0);
        assert_eq!(y.subtile_of(15, 3, W, H), 0);
        assert_eq!(y.subtile_of(0, 4, W, H), 1);
        assert_eq!(y.subtile_of(0, 15, W, H), 3);
        // xrect: full-height bands running along x.
        let x = QuadGrouping::CgXRect;
        assert_eq!(x.subtile_of(3, 15, W, H), 0);
        assert_eq!(x.subtile_of(4, 0, W, H), 1);
        assert_eq!(x.subtile_of(15, 0, W, H), 3);
    }

    #[test]
    fn cg_tri_four_triangles() {
        let g = QuadGrouping::CgTri;
        assert_eq!(g.subtile_of(8, 1, W, H), 0, "top");
        assert_eq!(g.subtile_of(14, 8, W, H), 1, "right");
        assert_eq!(g.subtile_of(1, 8, W, H), 2, "left");
        assert_eq!(g.subtile_of(8, 14, W, H), 3, "bottom");
    }

    /// Contiguity score: number of same-slot adjacent pairs. CG must
    /// beat FG decisively — that is the whole point of Fig. 6.
    #[test]
    fn cg_more_contiguous_than_fg() {
        let contiguity = |g: QuadGrouping| {
            let mut same = 0usize;
            for qy in 0..H {
                for qx in 0..W {
                    let s = g.subtile_of(qx, qy, W, H);
                    if qx + 1 < W && g.subtile_of(qx + 1, qy, W, H) == s {
                        same += 1;
                    }
                    if qy + 1 < H && g.subtile_of(qx, qy + 1, W, H) == s {
                        same += 1;
                    }
                }
            }
            same
        };
        let worst_cg = QuadGrouping::ALL
            .iter()
            .filter(|g| !g.is_fine_grained())
            .map(|g| contiguity(*g))
            .min()
            .unwrap();
        let best_fg = QuadGrouping::ALL
            .iter()
            .filter(|g| g.is_fine_grained())
            .map(|g| contiguity(*g))
            .max()
            .unwrap();
        assert!(
            worst_cg > 2 * best_fg,
            "CG contiguity {worst_cg} must dwarf FG {best_fg}"
        );
    }

    #[test]
    fn names_and_classification() {
        assert_eq!(QuadGrouping::FgXShift2.name(), "FG-xshift2");
        assert_eq!(QuadGrouping::CgSquare.name(), "CG-square");
        assert!(QuadGrouping::FgDiag.is_fine_grained());
        assert!(!QuadGrouping::CgTri.is_fine_grained());
        assert_eq!(QuadGrouping::ALL.len(), 10);
    }
}
