//! Counting global allocator with thread-tagged meters.
//!
//! The sweep engine (`dtexl::sweep`) enforces per-job *memory budgets*
//! the same way it enforces wall-clock timeouts: every job runs on a
//! disposable thread, and a watchdog on the dispatching worker observes
//! the job from outside. This crate supplies the observation channel —
//! a [`#[global_allocator]`](std::alloc::GlobalAlloc) wrapper around
//! [`System`] that, when a thread is *tagged* with an [`AllocMeter`],
//! charges that thread's allocations and frees to the meter.
//!
//! Design constraints (all load-bearing):
//!
//! * **Zero dependencies, no allocation on the hot path.** The
//!   allocator consults one `const`-initialized thread-local `Cell`
//!   (native TLS, no lazy allocation) and touches only atomics; an
//!   untagged thread pays a single pointer read + null check per
//!   allocator call.
//! * **Never panics, never unwinds.** Unwinding out of a global
//!   allocator is undefined behavior, so the hook uses
//!   [`LocalKey::try_with`](std::thread::LocalKey::try_with) and
//!   shrugs off TLS-destruction edge cases instead of asserting.
//! * **Enforcement lives outside the allocator.** Exceeding a budget
//!   must not abort the process (the default `handle_alloc_error`
//!   would), so the allocator only *counts*; the sweep watchdog polls
//!   [`AllocMeter::peak_bytes`] from the worker thread and abandons
//!   the job exactly like a wall-clock timeout.
//!
//! Cross-thread flows are attributed conservatively: memory allocated
//! on a tagged thread but freed elsewhere stays charged (the peak —
//! the budget signal — is monotone anyway), and frees of memory that
//! predates the tag clamp at zero instead of underflowing. Code that
//! spawns helper threads on behalf of a metered job (the SC-lane pool
//! under `PipelineConfig::threads > 1`) propagates the tag by reading
//! [`current_meter`] before spawning and tagging each helper with the
//! same meter, so `peak_alloc_bytes` covers lane-worker allocations
//! too. Several threads charging one meter share a single `current`
//! counter; the peak is therefore the *job's* high-water mark, not a
//! per-thread one — exactly the budget semantics the sweep wants.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::marker::PhantomData;
use std::ptr;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

/// Allocation counters for one tagged thread (shared with its
/// watchdog via `Arc`). All counters are monotone except `current`,
/// which tracks live bytes and may dip below zero transiently when a
/// thread frees memory allocated before it was tagged.
#[derive(Debug, Default)]
pub struct AllocMeter {
    /// Live bytes: allocations minus frees observed since tagging.
    current: AtomicI64,
    /// High-water mark of `current` (the budget signal).
    peak: AtomicU64,
    /// Cumulative bytes allocated (throughput diagnostic).
    total: AtomicU64,
}

impl AllocMeter {
    /// A fresh meter with all counters at zero.
    #[must_use]
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Live bytes currently attributed to the tagged thread
    /// (clamped at zero).
    #[must_use]
    pub fn current_bytes(&self) -> u64 {
        self.current.load(Ordering::Relaxed).max(0) as u64
    }

    /// High-water mark of live bytes — the "peak RSS"-style figure
    /// budgets are enforced against and journals record.
    #[must_use]
    pub fn peak_bytes(&self) -> u64 {
        self.peak.load(Ordering::Relaxed)
    }

    /// Cumulative bytes allocated since tagging (ignores frees).
    #[must_use]
    pub fn total_bytes(&self) -> u64 {
        self.total.load(Ordering::Relaxed)
    }

    #[inline]
    fn on_alloc(&self, bytes: usize) {
        let bytes_i = i64::try_from(bytes).unwrap_or(i64::MAX);
        let now = self.current.fetch_add(bytes_i, Ordering::Relaxed) + bytes_i;
        self.total.fetch_add(bytes as u64, Ordering::Relaxed);
        if now > 0 {
            self.peak.fetch_max(now as u64, Ordering::Relaxed);
        }
    }

    #[inline]
    fn on_dealloc(&self, bytes: usize) {
        let bytes_i = i64::try_from(bytes).unwrap_or(i64::MAX);
        self.current.fetch_sub(bytes_i, Ordering::Relaxed);
    }
}

thread_local! {
    /// The meter charged for this thread's allocations (null = untagged).
    /// `const`-initialized so first access never allocates — a lazily
    /// initialized TLS slot would recurse into the allocator.
    static METER: Cell<*const AllocMeter> = const { Cell::new(ptr::null()) };
}

/// Tags the current thread until dropped; created by
/// [`meter_current_thread`].
///
/// Ownership model: the guard owns the strong reference keeping its
/// meter alive; the TLS slot only *borrows* the pointer. The slot
/// therefore always points at the meter of a still-live guard (or is
/// null), and dropping any combination of guards in any order can
/// never over-release a refcount.
#[derive(Debug)]
pub struct MeterGuard {
    /// The strong reference backing the pointer in the TLS slot.
    meter: Arc<AllocMeter>,
    /// Pins the guard to the tagging thread (`!Send`): the slot it
    /// must clear lives in that thread's TLS.
    _not_send: PhantomData<*const AllocMeter>,
}

impl Drop for MeterGuard {
    fn drop(&mut self) {
        // Untag only while this guard still owns the slot; if a later
        // `meter_current_thread` call displaced it, the slot belongs
        // to the newer guard and must be left alone.
        // lint: taint-barrier(pointer compared for slot-ownership identity only; the address never reaches a metric)
        let raw = Arc::as_ptr(&self.meter);
        let _ = METER.try_with(|slot| {
            if slot.get() == raw {
                slot.set(ptr::null());
            }
        });
        // `self.meter` drops after this body — strictly after the slot
        // stopped referencing it, so no allocator call can observe a
        // dangling pointer.
    }
}

/// Tag the current thread: until the returned guard drops, every
/// allocation and free this thread performs is charged to `meter`.
///
/// Tags do not nest — tagging an already-tagged thread replaces the
/// previous meter, whose guard becomes inert: it stops charging
/// immediately and does not resume when the replacing guard drops
/// (the thread simply becomes untagged once the guard owning the slot
/// drops). The sweep engine tags each disposable job thread exactly
/// once, at birth.
#[must_use]
pub fn meter_current_thread(meter: &Arc<AllocMeter>) -> MeterGuard {
    let owned = Arc::clone(meter);
    // lint: taint-barrier(the address is an opaque TLS tag read back only via pointer identity, never as a value)
    METER.with(|slot| slot.set(Arc::as_ptr(&owned)));
    MeterGuard {
        meter: owned,
        _not_send: PhantomData,
    }
}

/// The meter tagging the current thread, if any.
///
/// This is the handoff point for nested parallelism: a job thread's
/// lane pool calls this before `thread::scope`, then tags every lane
/// worker with the returned meter so their allocations charge the
/// owning job. Returns a fresh strong reference; the TLS slot itself
/// keeps borrowing through the guard that set it.
#[must_use]
pub fn current_meter() -> Option<Arc<AllocMeter>> {
    METER
        .try_with(|slot| {
            let raw = slot.get();
            if raw.is_null() {
                return None;
            }
            // SAFETY: the slot is only ever non-null while a
            // `MeterGuard` holding a strong reference to this meter is
            // alive on this thread (the guard nulls the slot before
            // releasing its reference), so `raw` points at a live
            // `Arc`-managed meter and bumping its count is sound.
            unsafe {
                Arc::increment_strong_count(raw);
                Some(Arc::from_raw(raw))
            }
        })
        .ok()
        .flatten()
}

#[inline]
fn record_alloc(bytes: usize) {
    let _ = METER.try_with(|slot| {
        let meter = slot.get();
        if !meter.is_null() {
            // SAFETY: a non-null slot means the `MeterGuard` that set
            // it is still alive on this thread and holds a strong
            // reference, so the meter behind the pointer is live; the
            // shared borrow lasts only for this atomic bump.
            unsafe { &*meter }.on_alloc(bytes);
        }
    });
}

#[inline]
fn record_dealloc(bytes: usize) {
    let _ = METER.try_with(|slot| {
        let meter = slot.get();
        if !meter.is_null() {
            // SAFETY: same invariant as `record_alloc` — the guard
            // that set the slot outlives every read, nulling it before
            // its strong reference drops.
            unsafe { &*meter }.on_dealloc(bytes);
        }
    });
}

/// The counting allocator: [`System`] plus per-thread attribution.
#[derive(Debug)]
pub struct CountingAlloc;

// Installed here, in a leaf crate, so every workspace binary that
// links the simulator gets metering without declaring anything.
#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

// SAFETY: delegates every operation to `System` unchanged; the
// bookkeeping around each call touches only atomics via a
// const-initialized TLS slot and can neither allocate nor unwind.
unsafe impl GlobalAlloc for CountingAlloc {
    // SAFETY: forwards the caller's layout to `System` untouched, so
    // the returned block satisfies exactly the contract `System`
    // guarantees; metering happens after the fact and cannot fail.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc(layout);
        if !p.is_null() {
            record_alloc(layout.size());
        }
        p
    }

    // SAFETY: as `alloc` — `System.alloc_zeroed` receives the layout
    // verbatim and its zeroed-block contract passes through unchanged.
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc_zeroed(layout);
        if !p.is_null() {
            record_alloc(layout.size());
        }
        p
    }

    // SAFETY: the caller promises `ptr`/`layout` came from this
    // allocator, which is `System` underneath — the free is forwarded
    // with both unmodified.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        record_dealloc(layout.size());
    }

    // SAFETY: caller-provided `ptr`/`layout`/`new_size` go straight
    // through to `System.realloc`; metering only runs on success, with
    // the sizes the caller already vouched for.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = System.realloc(ptr, layout, new_size);
        if !p.is_null() {
            record_dealloc(layout.size());
            record_alloc(new_size);
        }
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn untagged_threads_charge_nothing() {
        let meter = AllocMeter::new();
        let probe = vec![0u8; 64 * 1024];
        std::hint::black_box(&probe);
        assert_eq!(meter.peak_bytes(), 0);
        assert_eq!(meter.total_bytes(), 0);
    }

    #[test]
    fn tagged_allocations_raise_peak_and_total() {
        let meter = AllocMeter::new();
        {
            let _guard = meter_current_thread(&meter);
            let big = vec![7u8; 1 << 20];
            std::hint::black_box(&big);
            drop(big);
            let small = vec![7u8; 1 << 10];
            std::hint::black_box(&small);
        }
        assert!(
            meter.peak_bytes() >= 1 << 20,
            "peak {} must cover the 1 MiB spike",
            meter.peak_bytes()
        );
        assert!(meter.total_bytes() >= (1 << 20) + (1 << 10));
        // After the guard drops, this thread stops charging the meter.
        let total = meter.total_bytes();
        let after = vec![1u8; 1 << 16];
        std::hint::black_box(&after);
        assert_eq!(meter.total_bytes(), total);
    }

    #[test]
    fn peak_is_highwater_not_live() {
        let meter = AllocMeter::new();
        let _guard = meter_current_thread(&meter);
        let a = vec![1u8; 512 * 1024];
        std::hint::black_box(&a);
        drop(a);
        assert!(meter.peak_bytes() >= 512 * 1024);
        assert!(
            meter.current_bytes() < meter.peak_bytes(),
            "freeing must lower live bytes below the high-water mark"
        );
    }

    #[test]
    fn frees_of_pre_tag_memory_clamp_at_zero() {
        let pre = vec![9u8; 256 * 1024];
        let meter = AllocMeter::new();
        let _guard = meter_current_thread(&meter);
        drop(pre);
        assert_eq!(meter.current_bytes(), 0, "clamped, not underflowed");
        assert_eq!(meter.peak_bytes(), 0);
    }

    #[test]
    fn retagging_replaces_the_meter_without_double_release() {
        // Regression test: the displaced guard's Drop must not release
        // a refcount it no longer owns (previously a double
        // `Arc::from_raw` → use-after-free).
        let first = AllocMeter::new();
        let second = AllocMeter::new();
        let outer = meter_current_thread(&first);
        let inner = meter_current_thread(&second); // displaces `first`
        let probe = vec![5u8; 1 << 20];
        std::hint::black_box(&probe);
        drop(probe);
        assert_eq!(first.total_bytes(), 0, "displaced meter stops charging");
        assert!(second.total_bytes() >= 1 << 20, "replacement meter charges");
        drop(inner);
        drop(outer);
        // Both meters are still safely usable: the guards only ever
        // released the references they owned.
        assert_eq!(Arc::strong_count(&first), 1);
        assert_eq!(Arc::strong_count(&second), 1);
        let untagged = vec![4u8; 1 << 18];
        std::hint::black_box(&untagged);
        assert!(second.total_bytes() < (1 << 20) + (1 << 18));
    }

    #[test]
    fn retagged_guards_tolerate_out_of_order_drops() {
        let first = AllocMeter::new();
        let second = AllocMeter::new();
        let outer = meter_current_thread(&first);
        let inner = meter_current_thread(&second);
        // Drop the *displaced* guard first: it must leave the newer
        // guard's tag in place.
        drop(outer);
        let probe = vec![6u8; 1 << 20];
        std::hint::black_box(&probe);
        assert!(second.total_bytes() >= 1 << 20, "newer tag still active");
        drop(inner);
        assert_eq!(Arc::strong_count(&first), 1);
        assert_eq!(Arc::strong_count(&second), 1);
    }

    #[test]
    fn current_meter_hands_off_to_helper_threads() {
        assert!(
            current_meter().is_none(),
            "untagged thread reports no meter"
        );
        let meter = AllocMeter::new();
        let _guard = meter_current_thread(&meter);
        let handed = current_meter().expect("tagged thread exposes its meter");
        assert!(
            Arc::ptr_eq(&meter, &handed),
            "handoff returns the tagging meter itself"
        );
        // A helper thread tagged with the handed-off meter charges the
        // owning job's counters — the lane-worker flow.
        let worker = handed;
        std::thread::spawn(move || {
            let _tag = meter_current_thread(&worker);
            let buf = vec![8u8; 3 << 20];
            std::hint::black_box(&buf);
        })
        .join()
        .unwrap();
        assert!(
            meter.total_bytes() >= 3 << 20,
            "helper-thread allocations charge the job meter: {}",
            meter.total_bytes()
        );
    }

    #[test]
    fn current_meter_reference_outlives_the_guard() {
        let meter = AllocMeter::new();
        let held = {
            let _guard = meter_current_thread(&meter);
            current_meter().unwrap()
        };
        // Guard dropped; the handed-off Arc must still be valid.
        assert_eq!(held.peak_bytes(), meter.peak_bytes());
        drop(held);
        assert_eq!(Arc::strong_count(&meter), 1, "no leaked references");
    }

    #[test]
    fn meters_are_per_thread() {
        let meter = AllocMeter::new();
        let worker = meter.clone();
        std::thread::spawn(move || {
            let _guard = meter_current_thread(&worker);
            let buf = vec![3u8; 2 << 20];
            std::hint::black_box(&buf);
            worker.peak_bytes()
        })
        .join()
        .map(|peak| assert!(peak >= 2 << 20, "job thread metered: {peak}"))
        .unwrap();
        // This (untagged) thread contributed nothing since the join.
        let total = meter.total_bytes();
        let here = vec![0u8; 1 << 18];
        std::hint::black_box(&here);
        assert_eq!(meter.total_bytes(), total);
    }
}
