//! Morton (Z-order) curve encoding.
//!
//! Used in two places:
//!
//! * texture layout — texel `(x, y)` of a mip level lives at Morton
//!   offset `encode(x, y)`, so a 64-byte cache line covers a 4×4 block
//!   of RGBA8 texels;
//! * tile traversal — the Z-order of Fig. 7(a) is the Morton order of
//!   tile coordinates.

/// Interleave the low 16 bits of `v` with zeros (`abcd` → `0a0b0c0d`).
#[must_use]
#[inline]
pub fn spread_bits(v: u32) -> u64 {
    let mut x = u64::from(v & 0xFFFF);
    x = (x | (x << 8)) & 0x00FF_00FF;
    x = (x | (x << 4)) & 0x0F0F_0F0F;
    x = (x | (x << 2)) & 0x3333_3333;
    x = (x | (x << 1)) & 0x5555_5555;
    x
}

/// Compact every other bit of `v` (`0a0b0c0d` → `abcd`).
#[must_use]
pub fn compact_bits(v: u64) -> u32 {
    let mut x = v & 0x5555_5555;
    x = (x | (x >> 1)) & 0x3333_3333;
    x = (x | (x >> 2)) & 0x0F0F_0F0F;
    x = (x | (x >> 4)) & 0x00FF_00FF;
    x = (x | (x >> 8)) & 0x0000_FFFF;
    x as u32
}

/// Morton-encode a 2-D coordinate (x in even bits, y in odd bits).
///
/// # Examples
///
/// ```
/// use dtexl_texture::morton::encode;
/// assert_eq!(encode(0, 0), 0);
/// assert_eq!(encode(1, 0), 1);
/// assert_eq!(encode(0, 1), 2);
/// assert_eq!(encode(1, 1), 3);
/// assert_eq!(encode(2, 0), 4);
/// ```
#[must_use]
#[inline]
pub fn encode(x: u32, y: u32) -> u64 {
    spread_bits(x) | (spread_bits(y) << 1)
}

/// Decode a Morton index back into `(x, y)`.
#[must_use]
pub fn decode(m: u64) -> (u32, u32) {
    (compact_bits(m), compact_bits(m >> 1))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_quadrant_order() {
        // The 2×2 Z pattern, then recursion into the next block.
        let order: Vec<(u32, u32)> = (0..8).map(decode).collect();
        assert_eq!(
            order,
            vec![
                (0, 0),
                (1, 0),
                (0, 1),
                (1, 1),
                (2, 0),
                (3, 0),
                (2, 1),
                (3, 1)
            ]
        );
    }

    #[test]
    fn encode_decode_roundtrip() {
        for &(x, y) in &[
            (0, 0),
            (1, 2),
            (31, 17),
            (255, 255),
            (65535, 1),
            (40000, 60000),
        ] {
            assert_eq!(decode(encode(x, y)), (x, y));
        }
    }

    #[test]
    fn encode_is_monotone_in_blocks() {
        // All indices of the top-left 4×4 block come before any index of
        // the next 4×4 block in the same block-row.
        let max_first: u64 = (0..4)
            .flat_map(|y| (0..4).map(move |x| encode(x, y)))
            .max()
            .unwrap();
        let min_second: u64 = (0..4)
            .flat_map(|y| (4..8).map(move |x| encode(x, y)))
            .min()
            .unwrap();
        assert!(max_first < min_second);
    }

    #[test]
    fn spread_compact_inverse() {
        for v in [0u32, 1, 0xFFFF, 0xABCD, 0x1234] {
            assert_eq!(compact_bits(spread_bits(v)), v);
        }
    }

    #[test]
    fn locality_neighbors_share_high_bits() {
        // Two horizontally adjacent texels inside a 4×4 block differ only
        // in the low 4 Morton bits → same 16-texel group.
        let a = encode(4, 8);
        let b = encode(5, 8);
        assert_eq!(a >> 4, b >> 4);
    }
}
