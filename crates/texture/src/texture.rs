//! Texture descriptors with Morton-tiled mip chains.

use crate::morton;
use dtexl_mem::{LineAddr, LINE_BYTES};

/// Identifier of a texture within a scene.
pub type TextureId = u32;

/// Bytes per texel (RGBA8 throughout the modeled GPU).
pub const BYTES_PER_TEXEL: u64 = 4;

/// In-memory texel layout of a texture level.
///
/// Mobile GPUs tile textures so that 2-D locality becomes 1-D address
/// locality; [`Morton`](TexelLayout::Morton) is the default and what
/// the paper's platform implies. [`RowMajor`](TexelLayout::RowMajor)
/// (linear) layouts are supported for the ablation benches: with
/// row-major lines a cache line covers a 16×1 texel strip, so vertical
/// neighbor quads never share lines and the locality available to the
/// scheduler shrinks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TexelLayout {
    /// Z-curve tiling: one 64-byte line = one 4×4 texel block.
    #[default]
    Morton,
    /// Linear scanlines: one 64-byte line = a 16×1 texel strip.
    RowMajor,
}

/// A 2-D texture with a full mip chain, Morton-tiled per level.
///
/// Dimensions must be powers of two (the synthetic workloads only create
/// such textures, matching common mobile content pipelines). Level 0 is
/// the full resolution; each level halves both dimensions (min 1) down
/// to 1×1.
///
/// # Examples
///
/// ```
/// use dtexl_texture::TextureDesc;
/// let t = TextureDesc::new(3, 128, 64, 0x4000);
/// assert_eq!(t.levels(), 8);
/// assert_eq!(t.level_dims(0), (128, 64));
/// assert_eq!(t.level_dims(7), (1, 1));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TextureDesc {
    id: TextureId,
    width: u32,
    height: u32,
    base_addr: u64,
    layout: TexelLayout,
    /// Byte offset of each level from `base_addr`.
    level_offsets: Vec<u64>,
    total_bytes: u64,
}

impl TextureDesc {
    /// Create a Morton-tiled texture (the platform default).
    ///
    /// # Panics
    ///
    /// Panics if `width` or `height` is zero or not a power of two.
    #[must_use]
    pub fn new(id: TextureId, width: u32, height: u32, base_addr: u64) -> Self {
        Self::with_layout(id, width, height, base_addr, TexelLayout::Morton)
    }

    /// Create a texture with an explicit [`TexelLayout`].
    ///
    /// # Panics
    ///
    /// Panics if `width` or `height` is zero or not a power of two.
    #[must_use]
    pub fn with_layout(
        id: TextureId,
        width: u32,
        height: u32,
        base_addr: u64,
        layout: TexelLayout,
    ) -> Self {
        assert!(
            width.is_power_of_two() && height.is_power_of_two(),
            "texture dimensions must be powers of two, got {width}x{height}"
        );
        let mut level_offsets = Vec::new();
        let mut offset = 0u64;
        let (mut w, mut h) = (width, height);
        loop {
            level_offsets.push(offset);
            // Morton layout addresses within the bounding square; the
            // allocation is padded accordingly (a standard trade-off of
            // tiled layouts for non-square levels).
            let side = w.max(h) as u64;
            offset += side * side * BYTES_PER_TEXEL;
            if w == 1 && h == 1 {
                break;
            }
            w = (w / 2).max(1);
            h = (h / 2).max(1);
        }
        Self {
            id,
            width,
            height,
            base_addr,
            layout,
            level_offsets,
            total_bytes: offset,
        }
    }

    /// The texture's texel layout.
    #[must_use]
    pub fn layout(&self) -> TexelLayout {
        self.layout
    }

    /// The texture's identifier.
    #[must_use]
    pub fn id(&self) -> TextureId {
        self.id
    }

    /// Level-0 width in texels.
    #[must_use]
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Level-0 height in texels.
    #[must_use]
    pub fn height(&self) -> u32 {
        self.height
    }

    /// First byte address of the texture's allocation.
    #[must_use]
    pub fn base_addr(&self) -> u64 {
        self.base_addr
    }

    /// Number of mip levels.
    #[must_use]
    pub fn levels(&self) -> u32 {
        self.level_offsets.len() as u32
    }

    /// Total allocation footprint in bytes (all levels, with tiling
    /// padding) — the "texture footprint" of Table I.
    #[must_use]
    pub fn footprint_bytes(&self) -> u64 {
        self.total_bytes
    }

    /// Dimensions of mip level `level`.
    ///
    /// # Panics
    ///
    /// Panics if `level >= levels()`.
    #[must_use]
    pub fn level_dims(&self, level: u32) -> (u32, u32) {
        assert!(level < self.levels(), "level {level} out of range");
        ((self.width >> level).max(1), (self.height >> level).max(1))
    }

    /// First byte address of mip `level` (the sampler's hot-path
    /// shortcut past per-tap bounds checks).
    pub(crate) fn level_base_addr(&self, level: u32) -> u64 {
        self.base_addr + self.level_offsets[level as usize]
    }

    /// Byte address of texel `(x, y)` at `level`, clamping the
    /// coordinates to the level's bounds (clamp-to-edge addressing).
    ///
    /// # Panics
    ///
    /// Panics if `level >= levels()`.
    #[must_use]
    pub fn texel_addr(&self, level: u32, x: i64, y: i64) -> u64 {
        let (w, h) = self.level_dims(level);
        let cx = x.clamp(0, i64::from(w) - 1) as u32;
        let cy = y.clamp(0, i64::from(h) - 1) as u32;
        let texel_index = match self.layout {
            TexelLayout::Morton => morton::encode(cx, cy),
            // The allocation is padded to the bounding square, so the
            // linear pitch is the square side (keeps level offsets
            // layout-independent).
            TexelLayout::RowMajor => u64::from(cy) * u64::from(w.max(h)) + u64::from(cx),
        };
        self.base_addr + self.level_offsets[level as usize] + texel_index * BYTES_PER_TEXEL
    }

    /// Cache-line address of texel `(x, y)` at `level`.
    ///
    /// # Panics
    ///
    /// Panics if `level >= levels()`.
    #[must_use]
    pub fn texel_line(&self, level: u32, x: i64, y: i64) -> LineAddr {
        self.texel_addr(level, x, y) / LINE_BYTES
    }

    /// Procedural RGBA color of texel `(x, y)` at `level`
    /// (clamp-to-edge).
    ///
    /// The simulator carries no texel payloads; for functional
    /// rendering each texture's content is a deterministic hash of
    /// `(id, level, x, y)` — smooth enough to look like content,
    /// unique enough that any scheduling bug that samples the wrong
    /// texel changes the output image.
    ///
    /// # Panics
    ///
    /// Panics if `level >= levels()`.
    #[must_use]
    pub fn texel_color(&self, level: u32, x: i64, y: i64) -> [u8; 4] {
        let (w, h) = self.level_dims(level);
        let cx = x.clamp(0, i64::from(w) - 1) as u64;
        let cy = y.clamp(0, i64::from(h) - 1) as u64;
        let mut z = (u64::from(self.id) << 48) ^ (u64::from(level) << 40) ^ (cx << 20) ^ cy;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        [
            (z & 0xFF) as u8,
            ((z >> 8) & 0xFF) as u8,
            ((z >> 16) & 0xFF) as u8,
            // Alpha biased toward opaque-ish values so blending stays
            // visible but bounded.
            (128 + ((z >> 24) & 0x7F)) as u8,
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mip_chain_dims() {
        let t = TextureDesc::new(0, 256, 256, 0);
        assert_eq!(t.levels(), 9);
        assert_eq!(t.level_dims(0), (256, 256));
        assert_eq!(t.level_dims(4), (16, 16));
        assert_eq!(t.level_dims(8), (1, 1));
    }

    #[test]
    fn non_square_chain() {
        let t = TextureDesc::new(0, 64, 16, 0);
        assert_eq!(t.levels(), 7);
        assert_eq!(t.level_dims(3), (8, 2));
        assert_eq!(t.level_dims(6), (1, 1));
    }

    #[test]
    fn footprint_grows_with_size() {
        let small = TextureDesc::new(0, 64, 64, 0);
        let large = TextureDesc::new(1, 512, 512, 0);
        assert!(large.footprint_bytes() > small.footprint_bytes());
        // Level 0 dominates: footprint is between 1× and 2× level 0.
        let l0 = 512 * 512 * BYTES_PER_TEXEL;
        assert!(large.footprint_bytes() >= l0);
        assert!(large.footprint_bytes() < 2 * l0);
    }

    #[test]
    fn adjacent_texels_share_lines() {
        let t = TextureDesc::new(0, 256, 256, 0);
        // A 64-byte line holds 16 RGBA8 texels = one 4×4 Morton block.
        let l00 = t.texel_line(0, 0, 0);
        assert_eq!(t.texel_line(0, 3, 3), l00);
        assert_ne!(t.texel_line(0, 4, 0), l00);
        assert_ne!(t.texel_line(0, 0, 4), l00);
    }

    #[test]
    fn clamp_to_edge() {
        let t = TextureDesc::new(0, 32, 32, 0);
        assert_eq!(t.texel_addr(0, -5, 0), t.texel_addr(0, 0, 0));
        assert_eq!(t.texel_addr(0, 31, 99), t.texel_addr(0, 31, 31));
    }

    #[test]
    fn levels_do_not_overlap() {
        let t = TextureDesc::new(0, 64, 64, 0x1000);
        let max_l0 = t.texel_addr(0, 63, 63);
        let min_l1 = t.texel_addr(1, 0, 0);
        assert!(max_l0 < min_l1);
        assert!(min_l1 >= 0x1000 + 64 * 64 * BYTES_PER_TEXEL);
    }

    #[test]
    fn base_addr_offsets_everything() {
        let a = TextureDesc::new(0, 32, 32, 0);
        let b = TextureDesc::new(0, 32, 32, 0x10_0000);
        assert_eq!(b.texel_addr(2, 3, 3) - a.texel_addr(2, 3, 3), 0x10_0000);
    }

    #[test]
    fn pow2_dims_are_accepted() {
        // The checked counterpart of `non_pow2_panics`.
        let t = TextureDesc::new(0, 128, 64, 0);
        assert_eq!((t.width(), t.height()), (128, 64));
    }

    #[test]
    // lint: typed-sibling(pow2_dims_are_accepted)
    #[should_panic(expected = "powers of two")]
    fn non_pow2_panics() {
        let _ = TextureDesc::new(0, 100, 64, 0);
    }

    #[test]
    fn row_major_lines_are_horizontal_strips() {
        let t = TextureDesc::with_layout(0, 256, 256, 0, TexelLayout::RowMajor);
        assert_eq!(t.layout(), TexelLayout::RowMajor);
        let l00 = t.texel_line(0, 0, 0);
        // 16 RGBA8 texels per 64-byte line, along x.
        assert_eq!(t.texel_line(0, 15, 0), l00);
        assert_ne!(t.texel_line(0, 16, 0), l00);
        assert_ne!(t.texel_line(0, 0, 1), l00, "vertical neighbor: new line");
    }

    #[test]
    fn layouts_share_footprint_and_bounds() {
        let m = TextureDesc::new(0, 128, 64, 0x1000);
        let r = TextureDesc::with_layout(0, 128, 64, 0x1000, TexelLayout::RowMajor);
        assert_eq!(m.footprint_bytes(), r.footprint_bytes());
        // Row-major addresses stay inside the allocation too.
        for level in 0..r.levels() {
            let (w, h) = r.level_dims(level);
            let a = r.texel_addr(level, i64::from(w) - 1, i64::from(h) - 1);
            assert!(a < r.base_addr() + r.footprint_bytes());
        }
    }

    #[test]
    fn default_layout_is_morton() {
        assert_eq!(TextureDesc::new(0, 4, 4, 0).layout(), TexelLayout::Morton);
    }

    #[test]
    // lint: typed-sibling(layouts_share_footprint_and_bounds)
    #[should_panic(expected = "out of range")]
    fn bad_level_panics() {
        let t = TextureDesc::new(0, 4, 4, 0);
        let _ = t.level_dims(9);
    }
}
