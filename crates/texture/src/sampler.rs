//! LOD selection and filtering footprints.

use crate::texture::TextureDesc;
use dtexl_gmath::{interp::attr_derivatives, Vec2};
use dtexl_mem::LineAddr;

/// Texture filtering mode.
///
/// The paper notes that adjacent quads re-access neighboring texels
/// "more so in trilinear and anisotropic filtering than in bilinear"
/// — trilinear doubles the footprint (two mip levels) and anisotropic
/// multiplies it along the anisotropy axis, increasing inter-quad
/// sharing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Filter {
    /// 2×2 texels from the nearest mip level.
    #[default]
    Bilinear,
    /// 2×2 texels from each of the two surrounding mip levels.
    Trilinear,
    /// Up to `max_ratio` trilinear probes along the major axis.
    Anisotropic {
        /// Maximum anisotropy ratio (number of probes), ≥ 1.
        max_ratio: u8,
    },
}

/// Texture-coordinate wrap mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Wrap {
    /// Tile the texture (GL_REPEAT) — the common case for game content.
    #[default]
    Repeat,
    /// Clamp to the edge texel.
    ClampToEdge,
}

/// A texture sampler: computes LOD from quad derivatives and expands
/// fragments into cache-line footprints.
///
/// # Examples
///
/// ```
/// use dtexl_texture::{Filter, Sampler, TextureDesc};
/// use dtexl_gmath::Vec2;
/// let tex = TextureDesc::new(0, 64, 64, 0);
/// let s = Sampler::new(Filter::Trilinear);
/// // Minified 2× → LOD 1.
/// let uv = |x: f32, y: f32| Vec2::new(x * 2.0 / 64.0, y * 2.0 / 64.0);
/// let quad = [uv(4.0, 4.0), uv(5.0, 4.0), uv(4.0, 5.0), uv(5.0, 5.0)];
/// assert!((s.lod(&tex, quad) - 1.0).abs() < 1e-3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Sampler {
    filter: Filter,
    wrap: Wrap,
}

impl Sampler {
    /// Create a sampler with [`Wrap::Repeat`].
    #[must_use]
    pub const fn new(filter: Filter) -> Self {
        Self {
            filter,
            wrap: Wrap::Repeat,
        }
    }

    /// Create a sampler with an explicit wrap mode.
    #[must_use]
    pub const fn with_wrap(filter: Filter, wrap: Wrap) -> Self {
        Self { filter, wrap }
    }

    /// The sampler's filter.
    #[must_use]
    pub fn filter(&self) -> Filter {
        self.filter
    }

    /// Texture LOD for a quad of UVs laid out
    /// `[top-left, top-right, bottom-left, bottom-right]` with one-pixel
    /// spacing.
    #[must_use]
    pub fn lod(&self, tex: &TextureDesc, quad_uv: [Vec2; 4]) -> f32 {
        let scale = Vec2::new(tex.width() as f32, tex.height() as f32);
        let texel = quad_uv.map(|uv| uv.mul_elem(scale));
        let (ddx, ddy) = attr_derivatives(texel);
        let rho = ddx.length().max(ddy.length()).max(1e-6);
        rho.log2().max(0.0)
    }

    /// Unbiased exponent of the quad's maximum *squared* texel-space
    /// gradient `m = max(|ddx|², |ddy|²)`.
    ///
    /// With `ρ = √m`, integer mip levels derive from this exponent
    /// without `sqrt` or `log2f` (the footprint hot path):
    /// `floor(log2 ρ + ½) == (e + 1) >> 1` and
    /// `floor(log2 ρ) == e >> 1` exactly, because the half-integer
    /// thresholds of `log2 ρ` are the integer power-of-two boundaries
    /// of `m` — where its exponent increments. Same quantized level as
    /// [`lod`](Self::lod), minus that path's two rounding steps
    /// (`sqrtf` then `log2f`), which cancel out within the float
    /// spacing at every representable `m`.
    #[inline]
    fn grad_exp(tex: &TextureDesc, quad_uv: [Vec2; 4]) -> i32 {
        let scale = Vec2::new(tex.width() as f32, tex.height() as f32);
        let texel = quad_uv.map(|uv| uv.mul_elem(scale));
        let (ddx, ddy) = attr_derivatives(texel);
        let m = ddx.dot(ddx).max(ddy.dot(ddy)).max(1e-12);
        ((m.to_bits() >> 23) as i32) - 127
    }

    /// `floor(max(log2 ρ, 0) + ½)` — nearest mip level (bilinear).
    #[inline]
    fn level_round(tex: &TextureDesc, quad_uv: [Vec2; 4]) -> u32 {
        ((Self::grad_exp(tex, quad_uv) + 1) >> 1).max(0) as u32
    }

    /// `floor(max(log2 ρ, 0))` — lower mip level (trilinear).
    #[inline]
    fn level_floor(tex: &TextureDesc, quad_uv: [Vec2; 4]) -> u32 {
        (Self::grad_exp(tex, quad_uv) >> 1).max(0) as u32
    }

    /// Cache-line footprint of one quad: the deduplicated set of line
    /// addresses its four fragments touch under the configured filter.
    ///
    /// Hardware texture units coalesce the four fragments' requests per
    /// cycle, so intra-quad duplicates count as a single access — the
    /// inter-quad sharing is what the scheduler can win or lose.
    #[must_use]
    pub fn quad_footprint(&self, tex: &TextureDesc, quad_uv: [Vec2; 4]) -> Vec<LineAddr> {
        let mut lines = Vec::with_capacity(16);
        self.quad_footprint_into(tex, quad_uv, &mut lines);
        lines
    }

    /// Arena variant of [`quad_footprint`](Self::quad_footprint):
    /// appends the quad's sorted, deduplicated footprint to `out`
    /// without allocating, so callers can pack many quads' footprints
    /// into one flat buffer. Only the appended tail is sorted and
    /// deduplicated; anything already in `out` is untouched.
    pub fn quad_footprint_into(
        &self,
        tex: &TextureDesc,
        quad_uv: [Vec2; 4],
        lines: &mut Vec<LineAddr>,
    ) {
        let start = lines.len();
        let max_level = tex.levels() - 1;

        match self.filter {
            Filter::Bilinear => {
                let level = Self::level_round(tex, quad_uv).min(max_level);
                let ctx = LevelCtx::new(tex, level, self.wrap);
                for uv in quad_uv {
                    ctx.fragment_lines(uv, lines, start);
                }
            }
            Filter::Trilinear => {
                let lo = Self::level_floor(tex, quad_uv).min(max_level);
                let hi = (lo + 1).min(max_level);
                let ctx_lo = LevelCtx::new(tex, lo, self.wrap);
                let ctx_hi = LevelCtx::new(tex, hi, self.wrap);
                for uv in quad_uv {
                    ctx_lo.fragment_lines(uv, lines, start);
                    if hi != lo {
                        ctx_hi.fragment_lines(uv, lines, start);
                    }
                }
            }
            Filter::Anisotropic { max_ratio } => {
                let ratio = max_ratio.max(1);
                let scale = Vec2::new(tex.width() as f32, tex.height() as f32);
                let texel = quad_uv.map(|uv| uv.mul_elem(scale));
                let (ddx, ddy) = attr_derivatives(texel);
                let (major, minor) = if ddx.length() >= ddy.length() {
                    (ddx, ddy)
                } else {
                    (ddy, ddx)
                };
                let minor_len = minor.length().max(1e-6);
                let probes = ((major.length() / minor_len).ceil() as u8).clamp(1, ratio) as i32;
                // floor(max(log2 minor_len, 0)) is the unbiased
                // exponent of `minor_len`, clamped — see `grad_exp`.
                let e = (minor_len.to_bits() >> 23) as i32 - 127;
                let level = (e.max(0) as u32).min(max_level);
                let hi = (level + 1).min(max_level);
                let ctx_lo = LevelCtx::new(tex, level, self.wrap);
                let ctx_hi = LevelCtx::new(tex, hi, self.wrap);
                for uv in quad_uv {
                    let uvt = uv.mul_elem(scale);
                    for p in 0..probes {
                        // Distribute probes along the major axis.
                        let t = if probes == 1 {
                            0.0
                        } else {
                            (p as f32 + 0.5) / probes as f32 - 0.5
                        };
                        let pos = uvt + major * t;
                        let pos_uv = Vec2::new(pos.x / scale.x, pos.y / scale.y);
                        ctx_lo.fragment_lines(pos_uv, lines, start);
                        if hi != level {
                            ctx_hi.fragment_lines(pos_uv, lines, start);
                        }
                    }
                }
            }
        }

        lines[start..].sort_unstable();
        // In-place dedup of the tail (`Vec::dedup` would scan — and
        // could merge across — the caller's existing prefix).
        let mut w = start;
        for r in start..lines.len() {
            if w == start || lines[w - 1] != lines[r] {
                lines[w] = lines[r];
                w += 1;
            }
        }
        lines.truncate(w);
    }

    /// Bilinearly filtered RGBA color (0–1 floats) at `uv` on the mip
    /// level selected by `lod` (functional rendering path).
    #[must_use]
    pub fn sample_color(&self, tex: &TextureDesc, uv: Vec2, lod: f32) -> [f32; 4] {
        let max_level = tex.levels() - 1;
        let level = (lod + 0.5).floor().clamp(0.0, max_level as f32) as u32;
        let (w, h) = tex.level_dims(level);
        let tu = uv.x * w as f32 - 0.5;
        let tv = uv.y * h as f32 - 0.5;
        let x0 = tu.floor();
        let y0 = tv.floor();
        let fx = tu - x0;
        let fy = tv - y0;
        let mut acc = [0f32; 4];
        for (dx, dy, wgt) in [
            (0, 0, (1.0 - fx) * (1.0 - fy)),
            (1, 0, fx * (1.0 - fy)),
            (0, 1, (1.0 - fx) * fy),
            (1, 1, fx * fy),
        ] {
            let (x, y) = self.wrap_coord(x0 as i64 + dx, y0 as i64 + dy, w, h);
            let c = tex.texel_color(level, x, y);
            for i in 0..4 {
                acc[i] += f32::from(c[i]) / 255.0 * wgt;
            }
        }
        acc
    }

    fn wrap_coord(&self, x: i64, y: i64, w: u32, h: u32) -> (i64, i64) {
        match self.wrap {
            Wrap::Repeat => (x.rem_euclid(i64::from(w)), y.rem_euclid(i64::from(h))),
            Wrap::ClampToEdge => (x.clamp(0, i64::from(w) - 1), y.clamp(0, i64::from(h) - 1)),
        }
    }
}

/// Per-mip-level addressing context, hoisted out of the per-fragment
/// tap loop: one [`quad_footprint_into`](Sampler::quad_footprint_into)
/// call resolves the level dimensions, wrap masks and base address
/// once, then expands each fragment's 2×2 taps with inline Morton
/// arithmetic. Bit-identical to addressing through
/// [`TextureDesc::texel_line`] tap by tap — this is the footprint hot
/// path (hundreds of thousands of quads per frame), so the per-tap
/// `rem_euclid` divisions and bounds re-checks are folded away.
struct LevelCtx {
    /// Level dimensions as floats (UV → texel scale).
    wf: f32,
    hf: f32,
    /// Level dimensions as integers. Power-of-two by construction
    /// ([`TextureDesc`] asserts it), so `Repeat` wrapping is a mask.
    w: i64,
    h: i64,
    /// First byte address of the level (base + level offset).
    base: u64,
    /// Row-major line pitch (`max(w, h)`, the padded square side).
    pitch: u64,
    morton: bool,
    clamp: bool,
    /// Morton layout *and* the level base is line-aligned: a 64-byte
    /// line is then exactly one 4×4-texel Morton block, so a tap's
    /// line is `base/64 + encode(x/4, y/4)` — one block encode shared
    /// by all taps that land in the block, instead of a full-precision
    /// Morton expansion per tap. Texture allocation keeps bases
    /// line-aligned, so only the 4-byte 1×1 tail level (offset `…+16`)
    /// misses this path.
    morton_aligned: bool,
}

impl LevelCtx {
    fn new(tex: &TextureDesc, level: u32, wrap: Wrap) -> Self {
        let (w, h) = tex.level_dims(level);
        debug_assert!(w.is_power_of_two() && h.is_power_of_two());
        let base = tex.level_base_addr(level);
        let morton = tex.layout() == crate::TexelLayout::Morton;
        // One line = one 4x4 Morton block requires exactly 16 texels
        // per line; both are fixed constants today, the assert guards
        // the fast path if either ever changes.
        debug_assert_eq!(dtexl_mem::LINE_BYTES / crate::BYTES_PER_TEXEL, 16);
        Self {
            wf: w as f32,
            hf: h as f32,
            w: i64::from(w),
            h: i64::from(h),
            base,
            pitch: u64::from(w.max(h)),
            morton,
            clamp: wrap == Wrap::ClampToEdge,
            morton_aligned: morton && base.is_multiple_of(dtexl_mem::LINE_BYTES),
        }
    }

    /// Line address of texel `(x, y)` (already wrapped into range).
    #[inline]
    fn line(&self, x: u32, y: u32) -> LineAddr {
        let texel_index = if self.morton {
            crate::morton::encode(x, y)
        } else {
            u64::from(y) * self.pitch + u64::from(x)
        };
        (self.base + texel_index * crate::BYTES_PER_TEXEL) / dtexl_mem::LINE_BYTES
    }

    /// Append the distinct lines of the fragment's 2×2 bilinear taps,
    /// skipping any already present in `out[start..]` (the current
    /// quad's tail). Adjacent fragments of a quad mostly share lines —
    /// a 64 B line is a 4×4-texel block — so deduplicating at push time
    /// keeps the tail at its final unique size (typically 1–4 entries)
    /// and the caller's closing sort+dedup nearly free. The linear
    /// `contains` scan is over that same tiny tail.
    fn fragment_lines(&self, uv: Vec2, out: &mut Vec<LineAddr>, start: usize) {
        // Branchless floor: `f32::floor` lowers to a `floorf` libcall on
        // baseline x86-64 (no SSE4.1), which dominated this function.
        // `as i64` truncates toward zero, so subtract one when the
        // truncation rounded up (negative non-integers); identical to
        // `v.floor() as i64` for every float, NaN and ±∞ included
        // (both saturate the same way).
        #[inline]
        fn floor_i64(v: f32) -> i64 {
            let t = v as i64;
            #[allow(clippy::cast_precision_loss)]
            let adjust = v < t as f32;
            // Saturating: floats below i64::MIN truncate to i64::MIN
            // and must stay there, as `floor() as i64` would.
            t.saturating_sub(i64::from(adjust))
        }
        let tu = uv.x * self.wf - 0.5;
        let tv = uv.y * self.hf - 0.5;
        let x0 = floor_i64(tu);
        let y0 = floor_i64(tv);
        let (x0, x1, y0, y1) = if self.clamp {
            (
                x0.clamp(0, self.w - 1) as u32,
                (x0 + 1).clamp(0, self.w - 1) as u32,
                y0.clamp(0, self.h - 1) as u32,
                (y0 + 1).clamp(0, self.h - 1) as u32,
            )
        } else {
            // `rem_euclid` by a power of two is a mask.
            (
                (x0 & (self.w - 1)) as u32,
                ((x0 + 1) & (self.w - 1)) as u32,
                (y0 & (self.h - 1)) as u32,
                ((y0 + 1) & (self.h - 1)) as u32,
            )
        };
        let (l00, l10, l01, l11);
        if self.morton_aligned {
            // Line-aligned Morton level: a tap's line is its 4×4-texel
            // block's Morton index off the level's first line. The 2×2
            // taps usually share one block, so most fragments cost a
            // single encode.
            let lb = self.base / dtexl_mem::LINE_BYTES;
            let (bx0, by0) = (x0 >> 2, y0 >> 2);
            let (bx1, by1) = (x1 >> 2, y1 >> 2);
            l00 = lb + crate::morton::encode(bx0, by0);
            l10 = if bx1 == bx0 {
                l00
            } else {
                lb + crate::morton::encode(bx1, by0)
            };
            l01 = if by1 == by0 {
                l00
            } else {
                lb + crate::morton::encode(bx0, by1)
            };
            l11 = if bx1 == bx0 {
                l01
            } else if by1 == by0 {
                l10
            } else {
                lb + crate::morton::encode(bx1, by1)
            };
        } else {
            l00 = self.line(x0, y0);
            l10 = self.line(x1, y0);
            l01 = self.line(x0, y1);
            l11 = self.line(x1, y1);
        }
        if !out[start..].contains(&l00) {
            out.push(l00);
        }
        if l10 != l00 && !out[start..].contains(&l10) {
            out.push(l10);
        }
        if l01 != l00 && l01 != l10 && !out[start..].contains(&l01) {
            out.push(l01);
        }
        if l11 != l00 && l11 != l10 && l11 != l01 && !out[start..].contains(&l11) {
            out.push(l11);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tex() -> TextureDesc {
        TextureDesc::new(0, 256, 256, 0)
    }

    /// A screen-aligned quad at `(x, y)` whose UVs advance `step` texels
    /// per pixel.
    fn quad_at(x: f32, y: f32, step: f32, t: &TextureDesc) -> [Vec2; 4] {
        let uv = |px: f32, py: f32| {
            Vec2::new(px * step / t.width() as f32, py * step / t.height() as f32)
        };
        [
            uv(x, y),
            uv(x + 1.0, y),
            uv(x, y + 1.0),
            uv(x + 1.0, y + 1.0),
        ]
    }

    #[test]
    fn lod_zero_at_unit_scale() {
        let t = tex();
        let s = Sampler::new(Filter::Bilinear);
        assert!(s.lod(&t, quad_at(10.0, 10.0, 1.0, &t)).abs() < 1e-3);
    }

    #[test]
    fn lod_one_at_half_scale() {
        let t = tex();
        let s = Sampler::new(Filter::Bilinear);
        assert!((s.lod(&t, quad_at(10.0, 10.0, 2.0, &t)) - 1.0).abs() < 1e-3);
    }

    #[test]
    fn lod_never_negative_under_magnification() {
        let t = tex();
        let s = Sampler::new(Filter::Bilinear);
        assert_eq!(s.lod(&t, quad_at(10.0, 10.0, 0.25, &t)), 0.0);
    }

    #[test]
    #[ignore]
    fn footprint_phase_probe() {
        use std::time::Instant;
        let t256 = TextureDesc::new(0, 256, 256, 0);
        let n = 119_000u32;
        // Synthetic quads: sweep uv across the texture at ~1:1 scale.
        let quads: Vec<[Vec2; 4]> = (0..n)
            .map(|i| {
                let px = (i % 480) as f32;
                let py = (i / 480) as f32;
                let uv = |x: f32, y: f32| Vec2::new(x / 256.0, y / 256.0);
                [
                    uv(px, py),
                    uv(px + 1.0, py),
                    uv(px, py + 1.0),
                    uv(px + 1.0, py + 1.0),
                ]
            })
            .collect();
        let s = Sampler::new(Filter::Bilinear);
        // Phase 1: lod only.
        let t = Instant::now();
        let mut acc = 0f32;
        for q in &quads {
            acc += s.lod(&t256, *q);
        }
        println!("lod: {:?} (acc {acc})", t.elapsed());
        // Phase 2: ctx + fragments, no sort.
        let t = Instant::now();
        let mut lines: Vec<LineAddr> = Vec::new();
        for q in &quads {
            let lod = s.lod(&t256, *q);
            let max_level = t256.levels() - 1;
            let level = (lod + 0.5).floor().min(max_level as f32) as u32;
            let ctx = LevelCtx::new(&t256, level, Wrap::Repeat);
            let start = lines.len();
            for uv in *q {
                ctx.fragment_lines(uv, &mut lines, start);
            }
        }
        println!("lod+fragments: {:?} ({} lines)", t.elapsed(), lines.len());
        // Phase 3: full footprint.
        lines.clear();
        let t = Instant::now();
        for q in &quads {
            s.quad_footprint_into(&t256, *q, &mut lines);
        }
        println!("full: {:?} ({} lines)", t.elapsed(), lines.len());
    }

    #[test]
    fn bilinear_footprint_is_small_and_dedupped() {
        let t = tex();
        let s = Sampler::new(Filter::Bilinear);
        let lines = s.quad_footprint(&t, quad_at(16.0, 16.0, 1.0, &t));
        // 4 fragments × 4 taps land in at most a 3×3 texel region →
        // 1..=4 distinct 4×4-texel lines.
        assert!((1..=4).contains(&lines.len()), "{} lines", lines.len());
        let mut sorted = lines.clone();
        sorted.dedup();
        assert_eq!(sorted, lines, "sorted and deduplicated");
    }

    #[test]
    fn trilinear_touches_two_levels() {
        let t = tex();
        let bi = Sampler::new(Filter::Bilinear);
        let tri = Sampler::new(Filter::Trilinear);
        let q = quad_at(16.0, 16.0, 3.0, &t); // fractional LOD ≈ 1.58
        let lines_bi = bi.quad_footprint(&t, q);
        let lines_tri = tri.quad_footprint(&t, q);
        assert!(lines_tri.len() > lines_bi.len());
    }

    #[test]
    fn adjacent_quads_share_lines() {
        // The key mechanism of the paper: neighboring quads hit the same
        // cache lines.
        let t = tex();
        let s = Sampler::new(Filter::Bilinear);
        let a = s.quad_footprint(&t, quad_at(16.0, 16.0, 1.0, &t));
        let b = s.quad_footprint(&t, quad_at(18.0, 16.0, 1.0, &t));
        let shared = a.iter().filter(|l| b.contains(l)).count();
        assert!(shared > 0, "adjacent quads must share texture lines");
        // While far-away quads do not:
        let c = s.quad_footprint(&t, quad_at(120.0, 120.0, 1.0, &t));
        assert_eq!(a.iter().filter(|l| c.contains(l)).count(), 0);
    }

    #[test]
    fn repeat_wraps_far_coordinates() {
        let t = tex();
        let s = Sampler::new(Filter::Bilinear);
        // One full texture period apart → identical footprints.
        let a = s.quad_footprint(&t, quad_at(8.0, 8.0, 1.0, &t));
        let b = s.quad_footprint(&t, quad_at(8.0 + 256.0, 8.0, 1.0, &t));
        assert_eq!(a, b);
    }

    #[test]
    fn clamp_keeps_edges() {
        let t = tex();
        let s = Sampler::with_wrap(Filter::Bilinear, Wrap::ClampToEdge);
        let lines = s.quad_footprint(&t, quad_at(-10.0, -10.0, 1.0, &t));
        assert_eq!(lines.len(), 1, "everything clamps to the corner block");
        assert_eq!(lines[0], t.texel_line(0, 0, 0));
    }

    #[test]
    fn anisotropic_probes_scale_with_stretch() {
        let t = tex();
        let iso = Sampler::new(Filter::Anisotropic { max_ratio: 8 });
        // Stretched quad: du/dx = 8 texels, dv/dy = 1 texel.
        let uv = |px: f32, py: f32| Vec2::new(px * 8.0 / 256.0, py * 1.0 / 256.0);
        let stretched = [uv(4.0, 4.0), uv(5.0, 4.0), uv(4.0, 5.0), uv(5.0, 5.0)];
        let square = quad_at(4.0, 4.0, 1.0, &t);
        assert!(
            iso.quad_footprint(&t, stretched).len() > iso.quad_footprint(&t, square).len(),
            "anisotropy adds probes"
        );
    }

    #[test]
    fn sample_color_is_deterministic_and_bounded() {
        let t = tex();
        let s = Sampler::new(Filter::Bilinear);
        let c1 = s.sample_color(&t, Vec2::new(0.3, 0.7), 0.0);
        let c2 = s.sample_color(&t, Vec2::new(0.3, 0.7), 0.0);
        assert_eq!(c1, c2);
        assert!(c1.iter().all(|&v| (0.0..=1.0).contains(&v)));
        // Different positions produce different content.
        let c3 = s.sample_color(&t, Vec2::new(0.8, 0.1), 0.0);
        assert_ne!(c1, c3);
    }

    #[test]
    fn sample_color_interpolates_smoothly() {
        let t = tex();
        let s = Sampler::new(Filter::Bilinear);
        // Two samples half a texel apart differ less than two samples
        // ten texels apart (bilinear smoothing), on average.
        let d =
            |a: [f32; 4], b: [f32; 4]| -> f32 { a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum() };
        let mut near = 0.0;
        let mut far = 0.0;
        for i in 0..32 {
            let base = Vec2::new(0.1 + i as f32 * 0.02, 0.4);
            let c0 = s.sample_color(&t, base, 0.0);
            near += d(
                c0,
                s.sample_color(&t, base + Vec2::new(0.5 / 256.0, 0.0), 0.0),
            );
            far += d(
                c0,
                s.sample_color(&t, base + Vec2::new(10.0 / 256.0, 0.0), 0.0),
            );
        }
        assert!(near < far, "bilinear must smooth: near {near} vs far {far}");
    }

    #[test]
    fn tiny_texture_clamps_mip_level() {
        let t = TextureDesc::new(0, 4, 4, 0);
        let s = Sampler::new(Filter::Trilinear);
        // Extreme minification: LOD far above the last level.
        let uv = |px: f32, py: f32| Vec2::new(px * 64.0 / 4.0, py * 64.0 / 4.0);
        let q = [uv(0.0, 0.0), uv(1.0, 0.0), uv(0.0, 1.0), uv(1.0, 1.0)];
        let lines = s.quad_footprint(&t, q);
        assert!(!lines.is_empty(), "clamped to the 1x1 level");
    }
}
