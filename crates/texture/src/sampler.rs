//! LOD selection and filtering footprints.

use crate::texture::TextureDesc;
use dtexl_gmath::{interp::attr_derivatives, Vec2};
use dtexl_mem::LineAddr;

/// Texture filtering mode.
///
/// The paper notes that adjacent quads re-access neighboring texels
/// "more so in trilinear and anisotropic filtering than in bilinear"
/// — trilinear doubles the footprint (two mip levels) and anisotropic
/// multiplies it along the anisotropy axis, increasing inter-quad
/// sharing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Filter {
    /// 2×2 texels from the nearest mip level.
    #[default]
    Bilinear,
    /// 2×2 texels from each of the two surrounding mip levels.
    Trilinear,
    /// Up to `max_ratio` trilinear probes along the major axis.
    Anisotropic {
        /// Maximum anisotropy ratio (number of probes), ≥ 1.
        max_ratio: u8,
    },
}

/// Texture-coordinate wrap mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Wrap {
    /// Tile the texture (GL_REPEAT) — the common case for game content.
    #[default]
    Repeat,
    /// Clamp to the edge texel.
    ClampToEdge,
}

/// A texture sampler: computes LOD from quad derivatives and expands
/// fragments into cache-line footprints.
///
/// # Examples
///
/// ```
/// use dtexl_texture::{Filter, Sampler, TextureDesc};
/// use dtexl_gmath::Vec2;
/// let tex = TextureDesc::new(0, 64, 64, 0);
/// let s = Sampler::new(Filter::Trilinear);
/// // Minified 2× → LOD 1.
/// let uv = |x: f32, y: f32| Vec2::new(x * 2.0 / 64.0, y * 2.0 / 64.0);
/// let quad = [uv(4.0, 4.0), uv(5.0, 4.0), uv(4.0, 5.0), uv(5.0, 5.0)];
/// assert!((s.lod(&tex, quad) - 1.0).abs() < 1e-3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Sampler {
    filter: Filter,
    wrap: Wrap,
}

impl Sampler {
    /// Create a sampler with [`Wrap::Repeat`].
    #[must_use]
    pub const fn new(filter: Filter) -> Self {
        Self {
            filter,
            wrap: Wrap::Repeat,
        }
    }

    /// Create a sampler with an explicit wrap mode.
    #[must_use]
    pub const fn with_wrap(filter: Filter, wrap: Wrap) -> Self {
        Self { filter, wrap }
    }

    /// The sampler's filter.
    #[must_use]
    pub fn filter(&self) -> Filter {
        self.filter
    }

    /// Texture LOD for a quad of UVs laid out
    /// `[top-left, top-right, bottom-left, bottom-right]` with one-pixel
    /// spacing.
    #[must_use]
    pub fn lod(&self, tex: &TextureDesc, quad_uv: [Vec2; 4]) -> f32 {
        let scale = Vec2::new(tex.width() as f32, tex.height() as f32);
        let texel = quad_uv.map(|uv| uv.mul_elem(scale));
        let (ddx, ddy) = attr_derivatives(texel);
        let rho = ddx.length().max(ddy.length()).max(1e-6);
        rho.log2().max(0.0)
    }

    /// Cache-line footprint of one quad: the deduplicated set of line
    /// addresses its four fragments touch under the configured filter.
    ///
    /// Hardware texture units coalesce the four fragments' requests per
    /// cycle, so intra-quad duplicates count as a single access — the
    /// inter-quad sharing is what the scheduler can win or lose.
    #[must_use]
    pub fn quad_footprint(&self, tex: &TextureDesc, quad_uv: [Vec2; 4]) -> Vec<LineAddr> {
        let lod = self.lod(tex, quad_uv);
        let max_level = tex.levels() - 1;
        let mut lines = Vec::with_capacity(16);

        match self.filter {
            Filter::Bilinear => {
                let level = (lod + 0.5).floor().min(max_level as f32) as u32;
                for uv in quad_uv {
                    self.bilinear_taps(tex, level, uv, &mut lines);
                }
            }
            Filter::Trilinear => {
                let lo = (lod.floor() as u32).min(max_level);
                let hi = (lo + 1).min(max_level);
                for uv in quad_uv {
                    self.bilinear_taps(tex, lo, uv, &mut lines);
                    if hi != lo {
                        self.bilinear_taps(tex, hi, uv, &mut lines);
                    }
                }
            }
            Filter::Anisotropic { max_ratio } => {
                let ratio = max_ratio.max(1);
                let scale = Vec2::new(tex.width() as f32, tex.height() as f32);
                let texel = quad_uv.map(|uv| uv.mul_elem(scale));
                let (ddx, ddy) = attr_derivatives(texel);
                let (major, minor) = if ddx.length() >= ddy.length() {
                    (ddx, ddy)
                } else {
                    (ddy, ddx)
                };
                let minor_len = minor.length().max(1e-6);
                let probes = ((major.length() / minor_len).ceil() as u8).clamp(1, ratio) as i32;
                let level = (minor_len.log2().max(0.0).floor() as u32).min(max_level);
                let hi = (level + 1).min(max_level);
                for uv in quad_uv {
                    let uvt = uv.mul_elem(scale);
                    for p in 0..probes {
                        // Distribute probes along the major axis.
                        let t = if probes == 1 {
                            0.0
                        } else {
                            (p as f32 + 0.5) / probes as f32 - 0.5
                        };
                        let pos = uvt + major * t;
                        let pos_uv = Vec2::new(pos.x / scale.x, pos.y / scale.y);
                        self.bilinear_taps(tex, level, pos_uv, &mut lines);
                        if hi != level {
                            self.bilinear_taps(tex, hi, pos_uv, &mut lines);
                        }
                    }
                }
            }
        }

        lines.sort_unstable();
        lines.dedup();
        lines
    }

    /// Bilinearly filtered RGBA color (0–1 floats) at `uv` on the mip
    /// level selected by `lod` (functional rendering path).
    #[must_use]
    pub fn sample_color(&self, tex: &TextureDesc, uv: Vec2, lod: f32) -> [f32; 4] {
        let max_level = tex.levels() - 1;
        let level = (lod + 0.5).floor().clamp(0.0, max_level as f32) as u32;
        let (w, h) = tex.level_dims(level);
        let tu = uv.x * w as f32 - 0.5;
        let tv = uv.y * h as f32 - 0.5;
        let x0 = tu.floor();
        let y0 = tv.floor();
        let fx = tu - x0;
        let fy = tv - y0;
        let mut acc = [0f32; 4];
        for (dx, dy, wgt) in [
            (0, 0, (1.0 - fx) * (1.0 - fy)),
            (1, 0, fx * (1.0 - fy)),
            (0, 1, (1.0 - fx) * fy),
            (1, 1, fx * fy),
        ] {
            let (x, y) = self.wrap_coord(x0 as i64 + dx, y0 as i64 + dy, w, h);
            let c = tex.texel_color(level, x, y);
            for i in 0..4 {
                acc[i] += f32::from(c[i]) / 255.0 * wgt;
            }
        }
        acc
    }

    /// Append the 2×2 bilinear tap lines for `uv` at `level`.
    fn bilinear_taps(&self, tex: &TextureDesc, level: u32, uv: Vec2, out: &mut Vec<LineAddr>) {
        let (w, h) = tex.level_dims(level);
        let tu = uv.x * w as f32 - 0.5;
        let tv = uv.y * h as f32 - 0.5;
        let x0 = tu.floor() as i64;
        let y0 = tv.floor() as i64;
        for (dx, dy) in [(0, 0), (1, 0), (0, 1), (1, 1)] {
            let (x, y) = self.wrap_coord(x0 + dx, y0 + dy, w, h);
            out.push(tex.texel_line(level, x, y));
        }
    }

    fn wrap_coord(&self, x: i64, y: i64, w: u32, h: u32) -> (i64, i64) {
        match self.wrap {
            Wrap::Repeat => (x.rem_euclid(i64::from(w)), y.rem_euclid(i64::from(h))),
            Wrap::ClampToEdge => (x.clamp(0, i64::from(w) - 1), y.clamp(0, i64::from(h) - 1)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tex() -> TextureDesc {
        TextureDesc::new(0, 256, 256, 0)
    }

    /// A screen-aligned quad at `(x, y)` whose UVs advance `step` texels
    /// per pixel.
    fn quad_at(x: f32, y: f32, step: f32, t: &TextureDesc) -> [Vec2; 4] {
        let uv = |px: f32, py: f32| {
            Vec2::new(px * step / t.width() as f32, py * step / t.height() as f32)
        };
        [
            uv(x, y),
            uv(x + 1.0, y),
            uv(x, y + 1.0),
            uv(x + 1.0, y + 1.0),
        ]
    }

    #[test]
    fn lod_zero_at_unit_scale() {
        let t = tex();
        let s = Sampler::new(Filter::Bilinear);
        assert!(s.lod(&t, quad_at(10.0, 10.0, 1.0, &t)).abs() < 1e-3);
    }

    #[test]
    fn lod_one_at_half_scale() {
        let t = tex();
        let s = Sampler::new(Filter::Bilinear);
        assert!((s.lod(&t, quad_at(10.0, 10.0, 2.0, &t)) - 1.0).abs() < 1e-3);
    }

    #[test]
    fn lod_never_negative_under_magnification() {
        let t = tex();
        let s = Sampler::new(Filter::Bilinear);
        assert_eq!(s.lod(&t, quad_at(10.0, 10.0, 0.25, &t)), 0.0);
    }

    #[test]
    fn bilinear_footprint_is_small_and_dedupped() {
        let t = tex();
        let s = Sampler::new(Filter::Bilinear);
        let lines = s.quad_footprint(&t, quad_at(16.0, 16.0, 1.0, &t));
        // 4 fragments × 4 taps land in at most a 3×3 texel region →
        // 1..=4 distinct 4×4-texel lines.
        assert!((1..=4).contains(&lines.len()), "{} lines", lines.len());
        let mut sorted = lines.clone();
        sorted.dedup();
        assert_eq!(sorted, lines, "sorted and deduplicated");
    }

    #[test]
    fn trilinear_touches_two_levels() {
        let t = tex();
        let bi = Sampler::new(Filter::Bilinear);
        let tri = Sampler::new(Filter::Trilinear);
        let q = quad_at(16.0, 16.0, 3.0, &t); // fractional LOD ≈ 1.58
        let lines_bi = bi.quad_footprint(&t, q);
        let lines_tri = tri.quad_footprint(&t, q);
        assert!(lines_tri.len() > lines_bi.len());
    }

    #[test]
    fn adjacent_quads_share_lines() {
        // The key mechanism of the paper: neighboring quads hit the same
        // cache lines.
        let t = tex();
        let s = Sampler::new(Filter::Bilinear);
        let a = s.quad_footprint(&t, quad_at(16.0, 16.0, 1.0, &t));
        let b = s.quad_footprint(&t, quad_at(18.0, 16.0, 1.0, &t));
        let shared = a.iter().filter(|l| b.contains(l)).count();
        assert!(shared > 0, "adjacent quads must share texture lines");
        // While far-away quads do not:
        let c = s.quad_footprint(&t, quad_at(120.0, 120.0, 1.0, &t));
        assert_eq!(a.iter().filter(|l| c.contains(l)).count(), 0);
    }

    #[test]
    fn repeat_wraps_far_coordinates() {
        let t = tex();
        let s = Sampler::new(Filter::Bilinear);
        // One full texture period apart → identical footprints.
        let a = s.quad_footprint(&t, quad_at(8.0, 8.0, 1.0, &t));
        let b = s.quad_footprint(&t, quad_at(8.0 + 256.0, 8.0, 1.0, &t));
        assert_eq!(a, b);
    }

    #[test]
    fn clamp_keeps_edges() {
        let t = tex();
        let s = Sampler::with_wrap(Filter::Bilinear, Wrap::ClampToEdge);
        let lines = s.quad_footprint(&t, quad_at(-10.0, -10.0, 1.0, &t));
        assert_eq!(lines.len(), 1, "everything clamps to the corner block");
        assert_eq!(lines[0], t.texel_line(0, 0, 0));
    }

    #[test]
    fn anisotropic_probes_scale_with_stretch() {
        let t = tex();
        let iso = Sampler::new(Filter::Anisotropic { max_ratio: 8 });
        // Stretched quad: du/dx = 8 texels, dv/dy = 1 texel.
        let uv = |px: f32, py: f32| Vec2::new(px * 8.0 / 256.0, py * 1.0 / 256.0);
        let stretched = [uv(4.0, 4.0), uv(5.0, 4.0), uv(4.0, 5.0), uv(5.0, 5.0)];
        let square = quad_at(4.0, 4.0, 1.0, &t);
        assert!(
            iso.quad_footprint(&t, stretched).len() > iso.quad_footprint(&t, square).len(),
            "anisotropy adds probes"
        );
    }

    #[test]
    fn sample_color_is_deterministic_and_bounded() {
        let t = tex();
        let s = Sampler::new(Filter::Bilinear);
        let c1 = s.sample_color(&t, Vec2::new(0.3, 0.7), 0.0);
        let c2 = s.sample_color(&t, Vec2::new(0.3, 0.7), 0.0);
        assert_eq!(c1, c2);
        assert!(c1.iter().all(|&v| (0.0..=1.0).contains(&v)));
        // Different positions produce different content.
        let c3 = s.sample_color(&t, Vec2::new(0.8, 0.1), 0.0);
        assert_ne!(c1, c3);
    }

    #[test]
    fn sample_color_interpolates_smoothly() {
        let t = tex();
        let s = Sampler::new(Filter::Bilinear);
        // Two samples half a texel apart differ less than two samples
        // ten texels apart (bilinear smoothing), on average.
        let d =
            |a: [f32; 4], b: [f32; 4]| -> f32 { a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum() };
        let mut near = 0.0;
        let mut far = 0.0;
        for i in 0..32 {
            let base = Vec2::new(0.1 + i as f32 * 0.02, 0.4);
            let c0 = s.sample_color(&t, base, 0.0);
            near += d(
                c0,
                s.sample_color(&t, base + Vec2::new(0.5 / 256.0, 0.0), 0.0),
            );
            far += d(
                c0,
                s.sample_color(&t, base + Vec2::new(10.0 / 256.0, 0.0), 0.0),
            );
        }
        assert!(near < far, "bilinear must smooth: near {near} vs far {far}");
    }

    #[test]
    fn tiny_texture_clamps_mip_level() {
        let t = TextureDesc::new(0, 4, 4, 0);
        let s = Sampler::new(Filter::Trilinear);
        // Extreme minification: LOD far above the last level.
        let uv = |px: f32, py: f32| Vec2::new(px * 64.0 / 4.0, py * 64.0 / 4.0);
        let q = [uv(0.0, 0.0), uv(1.0, 0.0), uv(0.0, 1.0), uv(1.0, 1.0)];
        let lines = s.quad_footprint(&t, q);
        assert!(!lines.is_empty(), "clamped to the 1x1 level");
    }
}
