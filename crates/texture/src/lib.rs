//! Texture layout, mipmapping and filtering-footprint model for DTexL.
//!
//! The paper's central observation is that *adjacent quads access the
//! same texels or texels lying in the same cache line* (more so under
//! trilinear/anisotropic filtering than bilinear). To reproduce that we
//! need a faithful model of how a quad of fragments turns into cache-line
//! addresses:
//!
//! 1. [`TextureDesc`] — a texture with a power-of-two mip chain laid out
//!    in memory with **Morton (Z-curve) tiling** per level, the standard
//!    layout of mobile GPUs: a 64-byte line holds a 4×4 block of RGBA8
//!    texels, so 2-D locality in texture space becomes 1-D locality in
//!    addresses.
//! 2. [`Sampler`] — computes the texture LOD from the quad's screen-space
//!    UV derivatives (exactly like hardware: finite differences over the
//!    2×2 quad), then emits the texel footprint for bilinear (2×2 texels
//!    per fragment on one level), trilinear (two levels) or anisotropic
//!    (multiple probes along the major axis) filtering.
//! 3. [`morton`] — the Z-curve encoding used for both texture layout and
//!    (in `dtexl-sched`) tile traversal orders.
//!
//! # Examples
//!
//! ```
//! use dtexl_texture::{Filter, Sampler, TextureDesc};
//! use dtexl_gmath::Vec2;
//!
//! let tex = TextureDesc::new(0, 256, 256, 0x10_0000);
//! let sampler = Sampler::new(Filter::Bilinear);
//! // A quad whose UVs step one texel per pixel (LOD 0):
//! let uv = |x: f32, y: f32| Vec2::new(x / 256.0, y / 256.0);
//! let lines = sampler.quad_footprint(&tex, [
//!     uv(8.0, 8.0), uv(9.0, 8.0), uv(8.0, 9.0), uv(9.0, 9.0),
//! ]);
//! assert!(!lines.is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod morton;
mod sampler;
mod texture;

pub use sampler::{Filter, Sampler, Wrap};
pub use texture::{TexelLayout, TextureDesc, TextureId, BYTES_PER_TEXEL};
