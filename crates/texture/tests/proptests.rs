//! Property-based tests for texture layout and sampling.

use dtexl_gmath::Vec2;
use dtexl_texture::{morton, Filter, Sampler, TextureDesc};
use proptest::prelude::*;

fn pow2(max_log: u32) -> impl Strategy<Value = u32> {
    (2u32..=max_log).prop_map(|l| 1 << l)
}

proptest! {
    #[test]
    fn morton_roundtrip(x in 0u32..65536, y in 0u32..65536) {
        prop_assert_eq!(morton::decode(morton::encode(x, y)), (x, y));
    }

    #[test]
    fn morton_injective(a in 0u32..4096, b in 0u32..4096, c in 0u32..4096, d in 0u32..4096) {
        prop_assume!((a, b) != (c, d));
        prop_assert_ne!(morton::encode(a, b), morton::encode(c, d));
    }

    #[test]
    fn texel_addrs_stay_in_allocation(
        w in pow2(9), h in pow2(9),
        level_frac in 0.0f32..1.0,
        x in -64i64..1024, y in -64i64..1024,
    ) {
        let t = TextureDesc::new(0, w, h, 0x1000);
        let level = (level_frac * t.levels() as f32) as u32 % t.levels();
        let addr = t.texel_addr(level, x, y);
        prop_assert!(addr >= t.base_addr());
        prop_assert!(addr < t.base_addr() + t.footprint_bytes());
    }

    #[test]
    fn footprint_lines_sorted_unique(
        w in pow2(8), h in pow2(8),
        px in 0.0f32..64.0, py in 0.0f32..64.0,
        step in 0.25f32..8.0,
        trilinear in any::<bool>(),
    ) {
        let t = TextureDesc::new(0, w, h, 0);
        let s = Sampler::new(if trilinear { Filter::Trilinear } else { Filter::Bilinear });
        let uv = |x: f32, y: f32| Vec2::new(x * step / w as f32, y * step / h as f32);
        let lines = s.quad_footprint(&t, [
            uv(px, py), uv(px + 1.0, py), uv(px, py + 1.0), uv(px + 1.0, py + 1.0),
        ]);
        prop_assert!(!lines.is_empty());
        // Trilinear ≤ 2 levels × 4 frags × 4 taps; all unique and sorted.
        prop_assert!(lines.len() <= 32);
        let mut sorted = lines.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(sorted, lines);
    }

    #[test]
    fn lod_monotone_in_step(
        step_a in 0.5f32..4.0,
        extra in 1.1f32..4.0,
    ) {
        let t = TextureDesc::new(0, 256, 256, 0);
        let s = Sampler::new(Filter::Bilinear);
        let quad = |st: f32| {
            let uv = |x: f32, y: f32| Vec2::new(x * st / 256.0, y * st / 256.0);
            [uv(8.0, 8.0), uv(9.0, 8.0), uv(8.0, 9.0), uv(9.0, 9.0)]
        };
        let lod_a = s.lod(&t, quad(step_a));
        let lod_b = s.lod(&t, quad(step_a * extra));
        prop_assert!(lod_b >= lod_a);
    }

    #[test]
    fn translation_invariance_of_sharing(
        px in 8.0f32..32.0, py in 8.0f32..32.0,
    ) {
        // Two horizontally adjacent quads at texel:pixel 1:1 share lines
        // wherever they are placed (Morton blocks tile uniformly).
        let t = TextureDesc::new(0, 256, 256, 0);
        let s = Sampler::new(Filter::Bilinear);
        let quad = |x0: f32, y0: f32| {
            let uv = |x: f32, y: f32| Vec2::new(x / 256.0, y / 256.0);
            [uv(x0, y0), uv(x0 + 1.0, y0), uv(x0, y0 + 1.0), uv(x0 + 1.0, y0 + 1.0)]
        };
        let a = s.quad_footprint(&t, quad(px, py));
        let b = s.quad_footprint(&t, quad(px + 2.0, py));
        let shared = a.iter().filter(|l| b.contains(l)).count();
        prop_assert!(shared > 0, "adjacent quads always share ≥1 line");
    }
}
