//! `dtexl` — command-line interface to the DTexL simulator.
//!
//! ```text
//! dtexl list
//! dtexl sim         --game GTr [--schedule dtexl] [--res 1960x768]
//!                   [--frames N] [--threads N] [--coupled]
//! dtexl sweep       [--games all|CSV] [--schedules baseline,dtexl]
//!                   [--res 1960x768] [--journal sweep.jsonl] [--resume]
//!                   [--keep-going] [--job-timeout SECS] [--retries N]
//!                   [--backoff-ms N] [--upper] [--threads N]
//!                   [--shard i/N] [--job-mem-budget MB] [--table]
//!                   [--progress] [--progress-to FILE] [--heartbeat-ms N]
//!                   [--memoize [--memoize-budget MB]] [--with-obs]
//!                   [--stall-key SUBSTR --stall-ms N]
//! dtexl sweep dispatch [--shards N] [--wedge-timeout SECS]
//!                   [--max-restarts N] [--restart-backoff-ms N]
//!                   [--poison-threshold N] [--shard-mem-limit MB]
//!                   [--workdir DIR] [--out merged.jsonl] [--poll-ms N]
//!                   [+ the sweep job flags above]
//! dtexl sweep submit --spool DIR [--games all|CSV]
//!                   [--schedules baseline,dtexl] [--res 1960x768]
//!                   [--frame N] [--upper]
//! dtexl sweep daemon --spool DIR [--shards N] [--spool-poll-ms N]
//!                   [+ the dispatch supervision flags]
//!                   [+ the per-job sweep flags, minus the axes]
//! dtexl sweep status --spool DIR [--metrics]
//! dtexl sweep merge <journals...> --out merged.jsonl
//! dtexl sweep canon <journal>
//! dtexl profile     --game CCS [--schedule dtexl] [--res 1960x768]
//!                   [--threads N] [--trace-out frame.json]
//!                   [--rollup-out rollup.json] [--csv]
//! dtexl profile --diff A B  (operands: coupled | decoupled |
//!                   PATH[@coupled|@decoupled]) [+ the profile flags]
//! dtexl render      --game SoD --out frame.ppm [--res 980x384]
//! dtexl characterize [--res 1960x768]
//! dtexl trace-save  --game CCS --out frame.dtxl [--res 1960x768]
//! dtexl trace-sim   --in frame.dtxl [--schedule dtexl] [--res 1960x768]
//!                   [--threads N]
//! ```
//!
//! `--threads` (default: `DTEXL_THREADS` or 1) selects the number of
//! simulator worker threads; results are bit-identical to `--threads 1`.
//!
//! `--format json` (any command) switches error reporting to one JSON
//! object per line on stderr; `sweep` also emits its per-job records as
//! JSON lines on stdout.
//!
//! `sweep --shard i/N` runs only the jobs a stable hash of the job key
//! assigns to shard `i` of `N`; `sweep merge` unions shard journals
//! back into one (last-wins per key, typed error on divergent records)
//! and `sweep canon` prints a journal's latest `ok` records in a
//! canonical `key|config_hash|coupled|decoupled|l2` form for diffing.
//! `sweep --job-mem-budget MB` bounds each job's allocator high-water
//! mark (exceeding it is a journaled, non-retried `mem_budget` error).
//! `sweep --progress` streams one JSON line per job lifecycle event
//! (start/attempt/retry/heartbeat/done, with live `peak_alloc_bytes`
//! and the emitter's `shard`/`pid`/`seq`) to stderr; `--progress-to
//! FILE` sends the stream to a file instead (flushed per line, so a
//! supervisor can tail it); `--heartbeat-ms` tunes the in-flight beat
//! interval and `--heartbeat-ms 0` disables heartbeats (other events
//! still flow). `--stall-key SUBSTR --stall-ms N` injects a wall-clock
//! stall into every job whose key contains the substring — a
//! supervision test hook (the stall is part of the jobs' fault plans,
//! so it changes their config hashes).
//! `sweep --memoize` shares the schedule-independent frame prefix
//! (geometry, binning, raster, early-Z, texture footprints) across the
//! jobs that differ only in schedule — metrics are bit-identical with
//! or without it; `--memoize-budget MB` bounds the cache's retained
//! bytes (default: the `--job-mem-budget` value, else unbounded).
//! `sweep --with-obs` attaches the rollup probes to every job and
//! journals an `obs` object per record — the per-(SC, stage)
//! busy/wait cycle totals under both barrier modes plus the frame's
//! L1/L2/DRAM counters (bit-identical across `--threads` and
//! `--memoize`; `sweep canon` output is unchanged). `done` progress
//! events then carry the job's dominant stall category (`top_stall`)
//! and `dram_requests`.
//!
//! `profile` simulates one frame with the observability probes of
//! `dtexl-obs` attached and prints the stall-attribution tables (busy
//! vs barrier-wait vs upstream-wait cycles per (SC, stage) unit, under
//! both barrier modes); `--trace-out` additionally writes a
//! Chrome-trace JSON viewable at <https://ui.perfetto.dev>, with one
//! track per unit, and `--rollup-out` writes the journal-form rollup
//! JSON (the same object `sweep --with-obs` journals). Events carry
//! simulated cycles, so the output is bit-identical across
//! `--threads` values. `profile --diff A B` prints the per-unit stall
//! delta (signed cycles and percent change) between two rollups: an
//! operand is `coupled`/`decoupled` (the two barrier modes of one
//! live capture) or `PATH[@MODE]` (an exported rollup file, mode
//! defaulting to coupled).
//!
//! `sweep dispatch` runs the sweep as a self-healing fleet of child
//! processes — one `dtexl sweep --shard i/N` per shard, each resuming
//! its own journal — under a supervisor that tails their progress
//! streams, kills and restarts wedged shards (`--wedge-timeout`),
//! restarts crashed/OOM-killed ones with exponential backoff
//! (`--restart-backoff-ms`, capped by `--max-restarts`), quarantines
//! jobs blamed for `--poison-threshold` shard deaths as typed
//! `poisoned` journal records, enforces `--shard-mem-limit` at the
//! process boundary (cgroup-v2 `memory.max` when writable, else
//! polled RSS), and finally merges the shard journals into `--out`.
//! Children always run `--keep-going`: a self-healing fleet attempts
//! every job. `--threads` here sets each *child's* worker count
//! (default 1, so a death blames exactly the in-flight job).
//!
//! `sweep daemon` runs the fleet as a long-lived service over a
//! durable *spool* directory instead of a fixed job list: `sweep
//! submit` atomically drops content-addressed batches of job specs
//! into `<spool>/incoming/` (re-submitting the same batch is a
//! reported no-op), the daemon validates and accepts them *while
//! running* — healthy workers pick up new jobs between spool scans
//! without being restarted — and an incremental merger tails the
//! shard journals so `<spool>/merged.jsonl` and `<spool>/merged.canon`
//! are live views (a crash loses no completed work; restarting the
//! daemon resumes exactly). Supervision state is published to
//! `<spool>/status.json` (atomically swapped; also served on the
//! `<spool>/status.sock` unix socket) and `sweep status` pretty-prints
//! it (`--format json` passes the raw document through). The daemon
//! also keeps a Prometheus text-format metrics document live at
//! `<spool>/metrics.prom` (atomically swapped; `sweep status
//! --metrics` prints it, and sending `metrics\n` to the status socket
//! returns the same text — see docs/OBSERVABILITY.md for the metric
//! inventory). SIGTERM or
//! SIGINT — or `touch <spool>/drain` from anywhere — triggers a
//! graceful drain: in-flight jobs finish, the merge is flushed, and a
//! terminal status (`drained`/`stopped`, `alive:false`) is written.
//! Workers are `dtexl sweep --spool DIR` processes: the spool replaces
//! the `--games`/`--schedules` axes as the source of jobs, and
//! `--spool-poll-ms` sets the idle rescan interval.
//!
//! Exit codes: `0` success; `1` error or aborted sweep; `2` sweep
//! completed with failures (`--keep-going`). `sweep dispatch` and
//! `sweep daemon`: `0` every job ok; `2` completed with failed (incl.
//! poisoned) jobs; `1` a shard gave up, jobs are missing from the
//! merge, or the merge diverged/failed. `sweep submit`: `0` batch
//! accepted *or* an exact duplicate of one already spooled; `1`
//! invalid specs or spool I/O error.

use dtexl::characterize::characterize_all;
use dtexl::daemon::{run_daemon, run_spool_worker, DaemonOptions, DaemonStatus, WorkerOptions};
use dtexl::dispatch::{dispatch_fleet, DispatchOptions, FleetSpec};
use dtexl::obs::{ObsRollup, StallRollup};
use dtexl::profile::{stall_diff_table, FrameProfile};
use dtexl::spool::{JobSpec, Spool};
use dtexl::sweep::{
    canon_text, journal_line, json_escape, merge_journals, JobError, PrefixCache, Progress,
    RetryPolicy, Shard, SweepJob, SweepOptions,
};
use dtexl::{SimConfig, Simulator, CLOCK_HZ};
use dtexl_pipeline::{BarrierMode, FrameSim, PipelineConfig, Renderer};
use dtexl_scene::{Game, Scene, SceneSpec};
use dtexl_sched::{NamedMapping, ScheduleConfig};
use std::io::Write as _;
use std::process::ExitCode;
use std::sync::{Mutex, OnceLock};

mod args;
mod signals;

use args::Args;

/// How errors and sweep records are rendered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Format {
    Text,
    Json,
}

fn main() -> ExitCode {
    let mut args = Args::parse(std::env::args().skip(1));
    // `--format` is global: take it before dispatch so every error —
    // including argument errors — honors it.
    let format = match args.value("--format").as_deref() {
        None | Some("text") => Format::Text,
        Some("json") => Format::Json,
        Some(other) => {
            eprintln!("error: bad --format '{other}', expected text or json");
            return ExitCode::FAILURE;
        }
    };
    let Some(command) = args.subcommand() else {
        report_error(format, usage());
        return ExitCode::FAILURE;
    };
    let result = match command.as_str() {
        "list" => cmd_list().map(|()| ExitCode::SUCCESS),
        "sim" => cmd_sim(&mut args).map(|()| ExitCode::SUCCESS),
        "sweep" => cmd_sweep(&mut args, format),
        "profile" => cmd_profile(&mut args).map(|()| ExitCode::SUCCESS),
        "render" => cmd_render(&mut args).map(|()| ExitCode::SUCCESS),
        "characterize" => cmd_characterize(&mut args).map(|()| ExitCode::SUCCESS),
        "trace-save" => cmd_trace_save(&mut args).map(|()| ExitCode::SUCCESS),
        "trace-sim" => cmd_trace_sim(&mut args).map(|()| ExitCode::SUCCESS),
        other => Err(format!("unknown command '{other}'\n{}", usage())),
    };
    match result {
        Ok(code) => code,
        Err(e) => {
            report_error(format, &e);
            ExitCode::FAILURE
        }
    }
}

/// Print an error as plain text or as a single JSON line on stderr.
fn report_error(format: Format, message: &str) {
    match format {
        Format::Text => eprintln!("error: {message}"),
        Format::Json => eprintln!("{{\"error\":\"{}\"}}", json_escape(message)),
    }
}

fn usage() -> &'static str {
    "usage: dtexl <list|sim|sweep|profile|render|characterize|trace-save|trace-sim> [options]\n\
     run `dtexl list` for games and schedules"
}

fn cmd_list() -> Result<(), String> {
    println!("games (Table I):");
    for g in Game::ALL {
        let info = g.info();
        println!(
            "  {:4} {} ({}, {} MiB textures, {})",
            g.alias(),
            info.title,
            if info.is_3d { "3D" } else { "2D" },
            info.texture_footprint_mib,
            format!("{:?}", info.genre).to_lowercase(),
        );
    }
    println!("\nschedules:");
    println!("  baseline  FG-xshift2 / Z-order / const (coupled barriers)");
    println!("  dtexl     CG-square / Hilbert / flp2 (decoupled barriers)");
    for m in NamedMapping::FIG16 {
        println!("  {:13} {}", m.name().to_lowercase(), m.config().label());
    }
    Ok(())
}

fn parse_game(args: &mut Args) -> Result<Game, String> {
    let alias = args
        .value("--game")
        .ok_or_else(|| "missing --game <alias>".to_string())?;
    Game::ALL
        .into_iter()
        .find(|g| g.alias().eq_ignore_ascii_case(&alias))
        .ok_or_else(|| format!("unknown game '{alias}' (try `dtexl list`)"))
}

fn parse_res(args: &mut Args) -> Result<(u32, u32), String> {
    match args.value("--res") {
        None => Ok((1960, 768)),
        Some(s) => {
            let (w, h) = s
                .split_once('x')
                .ok_or_else(|| format!("bad --res '{s}', expected WxH"))?;
            let w: u32 = w.parse().map_err(|_| format!("bad width '{w}'"))?;
            let h: u32 = h.parse().map_err(|_| format!("bad height '{h}'"))?;
            if w == 0 || h == 0 {
                return Err("resolution must be non-zero".into());
            }
            Ok((w, h))
        }
    }
}

fn parse_pipeline(args: &mut Args) -> Result<PipelineConfig, String> {
    // Default: the DTEXL_THREADS environment variable, else serial.
    let mut pipeline = PipelineConfig::default();
    if let Some(threads) = args.parsed_value::<usize>("--threads")? {
        if threads == 0 {
            return Err("--threads must be >= 1".into());
        }
        pipeline.threads = threads;
    }
    Ok(pipeline)
}

fn parse_schedule(args: &mut Args) -> Result<ScheduleConfig, String> {
    match args.value("--schedule") {
        None => Ok(ScheduleConfig::dtexl()),
        Some(name) => name.parse().map_err(|e| format!("{e} (try `dtexl list`)")),
    }
}

fn cmd_sim(args: &mut Args) -> Result<(), String> {
    let game = parse_game(args)?;
    let (w, h) = parse_res(args)?;
    let schedule = parse_schedule(args)?;
    let coupled = args.flag("--coupled");
    let frames: u32 = args.parsed_value("--frames")?.unwrap_or(1);
    let pipeline = parse_pipeline(args)?;
    args.finish()?;

    let config = SimConfig {
        game,
        width: w,
        height: h,
        frame: 0,
        schedule,
        pipeline,
        barrier: if coupled {
            BarrierMode::Coupled
        } else {
            BarrierMode::Decoupled
        },
    };
    if frames <= 1 {
        let r = Simulator::simulate(&config);
        println!(
            "{} {}x{} {} [{:?}]",
            game.alias(),
            w,
            h,
            schedule.label(),
            config.barrier
        );
        println!("  cycles       {}", r.cycles);
        println!("  fps          {:.2}", r.fps);
        println!("  L2 accesses  {}", r.l2_accesses);
        println!("  quads shaded {}", r.quads_shaded);
        println!("  energy       {:.4} mJ", r.energy.total_mj());
    } else {
        let seq = Simulator::simulate_sequence(&config, frames);
        println!(
            "{} × {frames} frames: {:.2} fps avg, {:.4} mJ total, {:.0} L2/frame",
            game.alias(),
            seq.mean_fps(),
            seq.total_energy_mj(),
            seq.mean_l2_accesses()
        );
    }
    Ok(())
}

/// Parse a `--games`-style CSV (`all` or aliases).
fn games_from_csv(csv: &str) -> Result<Vec<Game>, String> {
    if csv == "all" {
        return Ok(Game::ALL.to_vec());
    }
    csv.split(',')
        .map(|alias| {
            let alias = alias.trim();
            Game::ALL
                .into_iter()
                .find(|g| g.alias().eq_ignore_ascii_case(alias))
                .ok_or_else(|| format!("unknown game '{alias}' (try `dtexl list`)"))
        })
        .collect()
}

/// Parse a `--schedules`-style CSV of schedule names.
fn schedules_from_csv(csv: &str) -> Result<Vec<ScheduleConfig>, String> {
    csv.split(',')
        .map(|name| name.parse().map_err(|e| format!("{e} (try `dtexl list`)")))
        .collect()
}

/// The sweep job axes shared by `sweep` and `sweep dispatch`: both
/// must build the *same* job list (same keys, same config hashes) —
/// the supervisor from its own copy, the children from the forwarded
/// flags — or poison quarantine and coverage audits fall apart.
struct SweepAxes {
    games_csv: String,
    games: Vec<Game>,
    schedules_csv: String,
    schedules: Vec<ScheduleConfig>,
    width: u32,
    height: u32,
    frame: u32,
    upper: bool,
    stall_key: Option<String>,
    stall_ms: u64,
}

impl SweepAxes {
    fn parse(args: &mut Args) -> Result<Self, String> {
        let games_csv = args.value("--games").unwrap_or_else(|| "all".into());
        let schedules_csv = args
            .value("--schedules")
            .unwrap_or_else(|| "baseline,dtexl".into());
        let (width, height) = parse_res(args)?;
        let frame: u32 = args.parsed_value("--frame")?.unwrap_or(0);
        let upper = args.flag("--upper");
        let stall_key = args.value("--stall-key");
        let stall_ms: u64 = args.parsed_value("--stall-ms")?.unwrap_or(0);
        if stall_key.is_some() != (stall_ms > 0) {
            return Err("--stall-key and --stall-ms must be given together".into());
        }
        Ok(Self {
            games: games_from_csv(&games_csv)?,
            games_csv,
            schedules: schedules_from_csv(&schedules_csv)?,
            schedules_csv,
            width,
            height,
            frame,
            upper,
            stall_key,
            stall_ms,
        })
    }

    /// The games × schedules cross product, with the stall-injection
    /// hook folded into matching jobs' fault plans.
    fn jobs(&self, pipeline_base: &PipelineConfig) -> Vec<SweepJob> {
        let mut jobs: Vec<SweepJob> = self
            .games
            .iter()
            .flat_map(|&game| {
                self.schedules.iter().map(move |&schedule| SweepJob {
                    game,
                    schedule,
                    width: self.width,
                    height: self.height,
                    frame: self.frame,
                    pipeline: PipelineConfig {
                        upper_bound: self.upper,
                        ..*pipeline_base
                    },
                })
            })
            .collect();
        if let Some(pat) = &self.stall_key {
            for job in &mut jobs {
                if job.key().contains(pat.as_str()) {
                    job.pipeline.fault.wall_stall_ms = self.stall_ms;
                }
            }
        }
        jobs
    }
}

/// Run a fault-tolerant sweep over games × schedules, journaling one
/// JSON line per job. Exit code 0: all jobs completed; 1: aborted on
/// first failure; 2: completed with failures (`--keep-going`).
fn cmd_sweep(args: &mut Args, format: Format) -> Result<ExitCode, String> {
    // Nested subcommands operate on journals instead of running jobs.
    match args.subcommand().as_deref() {
        Some("merge") => return cmd_sweep_merge(args).map(|()| ExitCode::SUCCESS),
        Some("canon") => return cmd_sweep_canon(args).map(|()| ExitCode::SUCCESS),
        Some("dispatch") => return cmd_sweep_dispatch(args, format),
        Some("submit") => return cmd_sweep_submit(args, format),
        Some("daemon") => return cmd_sweep_daemon(args, format),
        Some("status") => return cmd_sweep_status(args, format).map(|()| ExitCode::SUCCESS),
        Some(other) => return Err(format!("unknown sweep subcommand '{other}'\n{}", usage())),
        None => {}
    }
    // `--spool DIR` switches this process into spool-worker mode: jobs
    // come from the spool's accepted batches instead of the
    // `--games`/`--schedules` axes (which are rejected as unknown
    // flags), and the worker loops until the spool drains.
    let spool_dir = args.value("--spool");
    let spool_poll_ms: u64 = args.parsed_value("--spool-poll-ms")?.unwrap_or(100);
    let axes = match &spool_dir {
        Some(_) => None,
        None => Some(SweepAxes::parse(args)?),
    };
    let pipeline_base = parse_pipeline(args)?;
    let keep_going = args.flag("--keep-going");
    let resume = args.flag("--resume");
    let journal = args.value("--journal");
    let job_timeout = args
        .parsed_value::<u64>("--job-timeout")?
        .map(std::time::Duration::from_secs);
    let retries: u32 = args.parsed_value("--retries")?.unwrap_or(0);
    let backoff_ms: u64 = args.parsed_value("--backoff-ms")?.unwrap_or(50);
    let shard: Option<Shard> = match args.value("--shard") {
        None => None,
        Some(spec) => Some(spec.parse().map_err(|e| format!("bad --shard: {e}"))?),
    };
    let job_mem_budget = args
        .parsed_value::<u64>("--job-mem-budget")?
        .map(|mb| mb.saturating_mul(1024 * 1024));
    let table = args.flag("--table");
    let progress = args.flag("--progress");
    let progress_to = args.value("--progress-to");
    // 0 disables heartbeats (run_sweep treats a zero interval as "no
    // beats", not "beat as fast as possible").
    let heartbeat_ms: u64 = args.parsed_value("--heartbeat-ms")?.unwrap_or(1_000);
    let memoize = args.flag("--memoize");
    let memoize_budget = args
        .parsed_value::<u64>("--memoize-budget")?
        .map(|mb| mb.saturating_mul(1024 * 1024));
    let with_obs = args.flag("--with-obs");
    args.finish()?;
    if memoize_budget.is_some() && !memoize {
        return Err("--memoize-budget requires --memoize".into());
    }

    if resume && journal.is_none() {
        return Err("--resume requires --journal <file>".into());
    }

    // `--progress-to` redirects the stream to a per-line-flushed file
    // (and implies `--progress`); otherwise `--progress` streams to
    // stderr.
    let progress_hook: Option<fn(&Progress)> = match &progress_to {
        Some(path) => {
            let file = std::fs::File::create(path).map_err(|e| format!("create {path}: {e}"))?;
            let _ = PROGRESS_FILE.set(Mutex::new(file));
            Some(print_progress_to_file as fn(&Progress))
        }
        None => progress.then_some(print_progress as fn(&Progress)),
    };

    let opts = SweepOptions {
        workers: pipeline_base.threads,
        keep_going,
        job_timeout,
        retry: RetryPolicy {
            max_retries: retries,
            backoff: std::time::Duration::from_millis(backoff_ms),
        },
        journal: journal.map(std::path::PathBuf::from),
        resume,
        shard,
        job_mem_budget,
        progress: progress_hook,
        progress_heartbeat: std::time::Duration::from_millis(heartbeat_ms),
        // The cache budget defaults to the per-job budget: if one job
        // may not allocate more than that, retaining more than that
        // across jobs is not a saving either.
        prefix_cache: memoize.then(|| PrefixCache::new(memoize_budget.or(job_mem_budget))),
        with_obs,
        ..SweepOptions::default()
    };

    if let Some(dir) = spool_dir {
        if opts.journal.is_none() {
            return Err("--spool worker mode requires --journal <file>".into());
        }
        // A direct SIGTERM/SIGINT to a worker is honored as a drain
        // request scoped to this process.
        signals::install();
        let spool = Spool::open(&dir).map_err(|e| format!("open spool {dir}: {e}"))?;
        let wopts = WorkerOptions {
            pipeline: pipeline_base,
            poll: std::time::Duration::from_millis(spool_poll_ms.max(1)),
            sweep: opts,
            shutdown: signals::shutdown_requested,
        };
        let report = run_spool_worker(&spool, &wopts).map_err(|e| format!("spool worker: {e}"))?;
        match format {
            Format::Text => println!(
                "spool worker: {} generation(s), {} job(s) run, {} failed, {} corrupt batch(es)",
                report.generations, report.jobs_run, report.failed, report.corrupt_batches
            ),
            Format::Json => println!(
                "{{\"worker\":{{\"generations\":{},\"jobs_run\":{},\"failed\":{},\
                 \"corrupt_batches\":{},\"exit_code\":{}}}}}",
                report.generations,
                report.jobs_run,
                report.failed,
                report.corrupt_batches,
                report.exit_code()
            ),
        }
        return Ok(ExitCode::from(report.exit_code()));
    }

    let jobs = axes
        .expect("axes are parsed whenever --spool is absent")
        .jobs(&pipeline_base);
    let report = dtexl::sweep::run_sweep(&jobs, &opts, |_, _| {})
        .map_err(|e| format!("journal I/O: {e}"))?;

    for r in &report.records {
        match format {
            Format::Json => println!("{}", journal_line(r)),
            Format::Text => {
                let outcome = match (&r.metrics, &r.error) {
                    (Some(m), _) => format!(
                        "coupled {} / decoupled {} cycles",
                        m.coupled_cycles, m.decoupled_cycles
                    ),
                    (None, Some(e)) => e.to_string(),
                    (None, None) => String::new(),
                };
                println!("{:44} {:?} {}", r.key, r.status, outcome);
            }
        }
    }
    if table && format == Format::Text {
        println!("{}", report.table());
    }
    if report.is_success() {
        if format == Format::Text {
            println!("{}", report.summary());
        }
        Ok(ExitCode::SUCCESS)
    } else if report.aborted {
        report_error(format, &report.summary());
        Ok(ExitCode::FAILURE)
    } else {
        report_error(format, &report.summary());
        Ok(ExitCode::from(2))
    }
}

/// `sweep --progress` sink: one JSON line per lifecycle event on
/// stderr, so progress streams live while stdout keeps the per-job
/// records and tables.
fn print_progress(p: &Progress) {
    eprintln!("{}", p.to_json());
}

/// The `--progress-to` file, behind a static because `SweepOptions`
/// takes a plain fn pointer. Set once per process in `cmd_sweep`.
static PROGRESS_FILE: OnceLock<Mutex<std::fs::File>> = OnceLock::new();

/// `sweep --progress-to` sink: one JSON line per event, flushed
/// immediately so a supervising process can tail the file and treat
/// write latency as liveness.
fn print_progress_to_file(p: &Progress) {
    let Some(lock) = PROGRESS_FILE.get() else {
        return;
    };
    if let Ok(mut file) = lock.lock() {
        let _ = writeln!(file, "{}", p.to_json());
        let _ = file.flush();
    }
}

/// `dtexl sweep dispatch`: run the sweep as a supervised fleet of
/// child shard processes (see the module docs and
/// `dtexl::dispatch`).
fn cmd_sweep_dispatch(args: &mut Args, format: Format) -> Result<ExitCode, String> {
    let axes = SweepAxes::parse(args)?;
    // Children default to one worker thread so a shard death blames
    // exactly the job that was in flight (`--threads` overrides).
    let child_threads: usize = match args.parsed_value::<usize>("--threads")? {
        Some(0) => return Err("--threads must be >= 1".into()),
        Some(t) => t,
        None => 1,
    };
    // Forwarded per-job fault-tolerance knobs.
    let job_timeout: Option<u64> = args.parsed_value("--job-timeout")?;
    let retries: u32 = args.parsed_value("--retries")?.unwrap_or(0);
    let backoff_ms: u64 = args.parsed_value("--backoff-ms")?.unwrap_or(50);
    let job_mem_budget_mb: Option<u64> = args.parsed_value("--job-mem-budget")?;
    let heartbeat_ms: u64 = args.parsed_value("--heartbeat-ms")?.unwrap_or(1_000);
    let memoize = args.flag("--memoize");
    let memoize_budget_mb: Option<u64> = args.parsed_value("--memoize-budget")?;
    let with_obs = args.flag("--with-obs");
    // Supervision knobs.
    let shards: u32 = args.parsed_value("--shards")?.unwrap_or(2);
    if shards == 0 {
        return Err("--shards must be >= 1".into());
    }
    let wedge_timeout: u64 = args.parsed_value("--wedge-timeout")?.unwrap_or(30);
    let max_restarts: u32 = args.parsed_value("--max-restarts")?.unwrap_or(3);
    let restart_backoff_ms: u64 = args.parsed_value("--restart-backoff-ms")?.unwrap_or(500);
    let poison_threshold: u32 = args.parsed_value("--poison-threshold")?.unwrap_or(2);
    if poison_threshold == 0 {
        return Err("--poison-threshold must be >= 1".into());
    }
    let shard_mem_limit = args
        .parsed_value::<u64>("--shard-mem-limit")?
        .map(|mb| mb.saturating_mul(1024 * 1024));
    let workdir = args.value("--workdir").map(std::path::PathBuf::from);
    let out = args.value("--out").map(std::path::PathBuf::from);
    let poll_ms: u64 = args.parsed_value("--poll-ms")?.unwrap_or(50);
    args.finish()?;
    if memoize_budget_mb.is_some() && !memoize {
        return Err("--memoize-budget requires --memoize".into());
    }

    // Rebuild the children's sweep arguments from the parsed values,
    // so the supervisor's job list and the children's are provably
    // built from the same inputs. Children always run `--keep-going`:
    // a self-healing fleet attempts every job.
    let mut sweep_args: Vec<String> = vec![
        "sweep".into(),
        "--games".into(),
        axes.games_csv.clone(),
        "--schedules".into(),
        axes.schedules_csv.clone(),
        "--res".into(),
        format!("{}x{}", axes.width, axes.height),
        "--frame".into(),
        axes.frame.to_string(),
        "--threads".into(),
        child_threads.to_string(),
        "--keep-going".into(),
        "--heartbeat-ms".into(),
        heartbeat_ms.to_string(),
        "--backoff-ms".into(),
        backoff_ms.to_string(),
    ];
    if axes.upper {
        sweep_args.push("--upper".into());
    }
    if let Some(secs) = job_timeout {
        sweep_args.push("--job-timeout".into());
        sweep_args.push(secs.to_string());
    }
    if retries > 0 {
        sweep_args.push("--retries".into());
        sweep_args.push(retries.to_string());
    }
    if let Some(mb) = job_mem_budget_mb {
        sweep_args.push("--job-mem-budget".into());
        sweep_args.push(mb.to_string());
    }
    if memoize {
        sweep_args.push("--memoize".into());
        if let Some(mb) = memoize_budget_mb {
            sweep_args.push("--memoize-budget".into());
            sweep_args.push(mb.to_string());
        }
    }
    if let Some(key) = &axes.stall_key {
        sweep_args.push("--stall-key".into());
        sweep_args.push(key.clone());
        sweep_args.push("--stall-ms".into());
        sweep_args.push(axes.stall_ms.to_string());
    }
    if with_obs {
        sweep_args.push("--with-obs".into());
    }

    let pipeline_base = PipelineConfig {
        threads: child_threads,
        ..PipelineConfig::default()
    };
    let program =
        std::env::current_exe().map_err(|e| format!("cannot locate the dtexl binary: {e}"))?;
    let spec = FleetSpec {
        program,
        sweep_args,
        jobs: axes.jobs(&pipeline_base),
        shards,
    };
    let workdir = workdir.unwrap_or_else(|| {
        std::env::temp_dir().join(format!("dtexl-dispatch-{}", std::process::id()))
    });
    let opts = DispatchOptions {
        wedge_timeout: std::time::Duration::from_secs(wedge_timeout),
        max_restarts,
        restart_backoff: std::time::Duration::from_millis(restart_backoff_ms),
        poison_threshold,
        mem_limit: shard_mem_limit,
        poll: std::time::Duration::from_millis(poll_ms.max(1)),
        workdir,
        merged_journal: out,
        ..DispatchOptions::default()
    };
    let report = dispatch_fleet(&spec, &opts).map_err(|e| format!("dispatch: {e}"))?;
    match format {
        Format::Text => println!("{}", report.summary()),
        Format::Json => {
            let poisoned: Vec<String> = report
                .poisoned
                .iter()
                .map(|k| format!("\"{}\"", json_escape(k)))
                .collect();
            println!(
                "{{\"fleet\":{{\"ok\":{},\"failed\":{},\"missing\":{},\"poisoned\":[{}],\
                 \"shards\":{},\"restarts\":{},\"merged\":\"{}\",\"exit_code\":{}}}}}",
                report.ok,
                report.failed,
                report.missing.len(),
                poisoned.join(","),
                report.shards.len(),
                report.shards.iter().map(|s| s.restarts).sum::<u32>(),
                json_escape(&report.merged_journal.display().to_string()),
                report.exit_code()
            );
        }
    }
    Ok(ExitCode::from(report.exit_code()))
}

/// `dtexl sweep submit`: atomically append a content-addressed batch
/// of job specs to a spool's `incoming/` directory. Re-submitting a
/// batch the spool already holds (same canonical content) is a
/// reported no-op with exit 0, so at-least-once submitters are safe.
fn cmd_sweep_submit(args: &mut Args, format: Format) -> Result<ExitCode, String> {
    let dir = args
        .value("--spool")
        .ok_or_else(|| "missing --spool <dir>".to_string())?;
    let games_csv = args.value("--games").unwrap_or_else(|| "all".into());
    let schedules_csv = args
        .value("--schedules")
        .unwrap_or_else(|| "baseline,dtexl".into());
    let (width, height) = parse_res(args)?;
    let frame: u32 = args.parsed_value("--frame")?.unwrap_or(0);
    let upper = args.flag("--upper");
    args.finish()?;

    // Specs carry the *names* of the schedules (not resolved labels):
    // the daemon and its workers re-resolve them, so both sides
    // provably materialize the same jobs.
    let games = games_from_csv(&games_csv)?;
    let mut specs = Vec::new();
    for &game in &games {
        for name in schedules_csv.split(',') {
            specs.push(JobSpec::new(
                game.alias(),
                name.trim(),
                width,
                height,
                frame,
                upper,
            )?);
        }
    }
    let spool = Spool::open(&dir).map_err(|e| format!("open spool {dir}: {e}"))?;
    match spool.submit(&specs) {
        Ok(receipt) => {
            match format {
                Format::Text => println!(
                    "submitted batch {} ({} job(s)) -> {}",
                    receipt.batch,
                    receipt.jobs,
                    receipt.path.display()
                ),
                Format::Json => println!(
                    "{{\"submit\":{{\"batch\":\"{}\",\"jobs\":{},\"duplicate\":false}}}}",
                    json_escape(&receipt.batch),
                    receipt.jobs
                ),
            }
            Ok(ExitCode::SUCCESS)
        }
        Err(JobError::DuplicateBatch { batch }) => {
            match format {
                Format::Text => {
                    println!(
                        "batch {batch} already spooled ({} job(s)); nothing to do",
                        specs.len()
                    )
                }
                Format::Json => println!(
                    "{{\"submit\":{{\"batch\":\"{}\",\"jobs\":{},\"duplicate\":true}}}}",
                    json_escape(&batch),
                    specs.len()
                ),
            }
            Ok(ExitCode::SUCCESS)
        }
        Err(e) => Err(format!("submit: {e}")),
    }
}

/// `dtexl sweep daemon`: supervise a fleet of `sweep --spool` workers
/// over a spool directory until it drains (see the module docs and
/// `dtexl::daemon`).
fn cmd_sweep_daemon(args: &mut Args, format: Format) -> Result<ExitCode, String> {
    let dir = args
        .value("--spool")
        .ok_or_else(|| "missing --spool <dir>".to_string())?;
    // Same defaults and semantics as `sweep dispatch`, minus the job
    // axes (jobs arrive through the spool).
    let child_threads: usize = match args.parsed_value::<usize>("--threads")? {
        Some(0) => return Err("--threads must be >= 1".into()),
        Some(t) => t,
        None => 1,
    };
    let job_timeout: Option<u64> = args.parsed_value("--job-timeout")?;
    let retries: u32 = args.parsed_value("--retries")?.unwrap_or(0);
    let backoff_ms: u64 = args.parsed_value("--backoff-ms")?.unwrap_or(50);
    let job_mem_budget_mb: Option<u64> = args.parsed_value("--job-mem-budget")?;
    let heartbeat_ms: u64 = args.parsed_value("--heartbeat-ms")?.unwrap_or(1_000);
    let memoize = args.flag("--memoize");
    let memoize_budget_mb: Option<u64> = args.parsed_value("--memoize-budget")?;
    let with_obs = args.flag("--with-obs");
    let spool_poll_ms: u64 = args.parsed_value("--spool-poll-ms")?.unwrap_or(100);
    let shards: u32 = args.parsed_value("--shards")?.unwrap_or(2);
    if shards == 0 {
        return Err("--shards must be >= 1".into());
    }
    let wedge_timeout: u64 = args.parsed_value("--wedge-timeout")?.unwrap_or(30);
    let max_restarts: u32 = args.parsed_value("--max-restarts")?.unwrap_or(3);
    let restart_backoff_ms: u64 = args.parsed_value("--restart-backoff-ms")?.unwrap_or(500);
    let poison_threshold: u32 = args.parsed_value("--poison-threshold")?.unwrap_or(2);
    if poison_threshold == 0 {
        return Err("--poison-threshold must be >= 1".into());
    }
    let shard_mem_limit = args
        .parsed_value::<u64>("--shard-mem-limit")?
        .map(|mb| mb.saturating_mul(1024 * 1024));
    let poll_ms: u64 = args.parsed_value("--poll-ms")?.unwrap_or(50);
    args.finish()?;
    if memoize_budget_mb.is_some() && !memoize {
        return Err("--memoize-budget requires --memoize".into());
    }

    // Worker-mode arguments: jobs come from the spool, so no axes are
    // forwarded; the fleet appends the per-shard
    // `--shard/--journal/--resume/--progress-to` itself.
    let mut sweep_args: Vec<String> = vec![
        "sweep".into(),
        "--spool".into(),
        dir.clone(),
        "--spool-poll-ms".into(),
        spool_poll_ms.to_string(),
        "--threads".into(),
        child_threads.to_string(),
        "--heartbeat-ms".into(),
        heartbeat_ms.to_string(),
        "--backoff-ms".into(),
        backoff_ms.to_string(),
    ];
    if let Some(secs) = job_timeout {
        sweep_args.push("--job-timeout".into());
        sweep_args.push(secs.to_string());
    }
    if retries > 0 {
        sweep_args.push("--retries".into());
        sweep_args.push(retries.to_string());
    }
    if let Some(mb) = job_mem_budget_mb {
        sweep_args.push("--job-mem-budget".into());
        sweep_args.push(mb.to_string());
    }
    if memoize {
        sweep_args.push("--memoize".into());
        if let Some(mb) = memoize_budget_mb {
            sweep_args.push("--memoize-budget".into());
            sweep_args.push(mb.to_string());
        }
    }
    if with_obs {
        sweep_args.push("--with-obs".into());
    }

    let spool = Spool::open(&dir).map_err(|e| format!("open spool {dir}: {e}"))?;
    let program =
        std::env::current_exe().map_err(|e| format!("cannot locate the dtexl binary: {e}"))?;
    let spec = FleetSpec {
        program,
        sweep_args,
        // The daemon ingests accepted batches itself; starting on an
        // empty spool is the normal CI flow.
        jobs: Vec::new(),
        shards,
    };
    signals::install();
    let opts = DaemonOptions {
        dispatch: DispatchOptions {
            wedge_timeout: std::time::Duration::from_secs(wedge_timeout),
            max_restarts,
            restart_backoff: std::time::Duration::from_millis(restart_backoff_ms),
            poison_threshold,
            mem_limit: shard_mem_limit,
            poll: std::time::Duration::from_millis(poll_ms.max(1)),
            ..DispatchOptions::default()
        },
        pipeline: PipelineConfig {
            threads: child_threads,
            ..PipelineConfig::default()
        },
        poll: std::time::Duration::from_millis(poll_ms.max(1)),
        shutdown: signals::shutdown_requested,
    };
    let report = run_daemon(&spool, spec, &opts).map_err(|e| format!("daemon: {e}"))?;
    match format {
        Format::Text => println!("{}", report.summary()),
        Format::Json => {
            let poisoned: Vec<String> = report
                .poisoned
                .iter()
                .map(|k| format!("\"{}\"", json_escape(k)))
                .collect();
            println!(
                "{{\"daemon\":{{\"ok\":{},\"failed\":{},\"missing\":{},\"poisoned\":[{}],\
                 \"shards\":{},\"restarts\":{},\"batches_accepted\":{},\"batches_duplicate\":{},\
                 \"batches_rejected\":{},\"status_writes\":{},\"exit_code\":{}}}}}",
                report.ok,
                report.failed,
                report.missing.len(),
                poisoned.join(","),
                report.shards.len(),
                report.shards.iter().map(|s| s.restarts).sum::<u32>(),
                report.batches.0,
                report.batches.1,
                report.batches.2,
                report.status_writes,
                report.exit_code()
            );
        }
    }
    Ok(ExitCode::from(report.exit_code()))
}

/// `dtexl sweep status`: read and render a spool's status document.
/// `--format json` passes the raw document through unchanged (the
/// schema is documented in docs/ROBUSTNESS.md). `--metrics` prints
/// the spool's Prometheus text exposition (`metrics.prom`) instead.
fn cmd_sweep_status(args: &mut Args, format: Format) -> Result<(), String> {
    let dir = args
        .value("--spool")
        .ok_or_else(|| "missing --spool <dir>".to_string())?;
    let metrics = args.flag("--metrics");
    args.finish()?;
    let spool = Spool::open(&dir).map_err(|e| format!("open spool {dir}: {e}"))?;
    if metrics {
        // Already a stable text format; --format does not apply.
        let path = spool.metrics_file();
        let text = std::fs::read_to_string(&path).map_err(|e| {
            format!(
                "read {}: {e} (has a daemon written metrics on this spool?)",
                path.display()
            )
        })?;
        print!("{text}");
        return Ok(());
    }
    let path = spool.status_file();
    let text = std::fs::read_to_string(&path).map_err(|e| {
        format!(
            "read {}: {e} (is a daemon running on this spool?)",
            path.display()
        )
    })?;
    let status = DaemonStatus::parse(&text)
        .ok_or_else(|| format!("unparseable status document at {}", path.display()))?;
    match format {
        Format::Text => println!("{}", status.summary()),
        Format::Json => print!("{text}"),
    }
    Ok(())
}

/// Profile one frame: print the stall-attribution tables and
/// optionally export a Chrome-trace JSON (`--trace-out`) or the
/// journal-form rollup JSON (`--rollup-out`, consumed by `profile
/// --diff`). `--diff A B` switches to comparison mode instead.
fn cmd_profile(args: &mut Args) -> Result<(), String> {
    if args.flag("--diff") {
        return cmd_profile_diff(args);
    }
    let game = parse_game(args)?;
    let (w, h) = parse_res(args)?;
    let schedule = parse_schedule(args)?;
    let frame: u32 = args.parsed_value("--frame")?.unwrap_or(0);
    let pipeline = parse_pipeline(args)?;
    let trace_out = args.value("--trace-out");
    let rollup_out = args.value("--rollup-out");
    let csv = args.flag("--csv");
    args.finish()?;

    let config = SimConfig {
        game,
        width: w,
        height: h,
        frame,
        schedule,
        pipeline,
        barrier: BarrierMode::Decoupled,
    };
    let profile = FrameProfile::capture(&config).map_err(|e| e.to_string())?;
    println!(
        "{} {}x{} {}: coupled {} / decoupled {} cycles ({:.1}% saved), {} mem samples, {} dropped",
        game.alias(),
        w,
        h,
        schedule.label(),
        profile.coupled_cycles,
        profile.decoupled_cycles,
        100.0 * (1.0 - profile.decoupled_cycles as f64 / profile.coupled_cycles.max(1) as f64),
        profile.mem.len(),
        profile.dropped,
    );
    let stalls = profile.stall_table();
    let waits = profile.wait_table(BarrierMode::Coupled);
    if csv {
        println!("{}", stalls.to_csv());
        println!("{}", waits.to_csv());
    } else {
        println!("{}", stalls.render());
        println!("{}", waits.render());
    }
    if let Some(path) = trace_out {
        std::fs::write(&path, profile.chrome_trace()).map_err(|e| format!("write {path}: {e}"))?;
        println!("wrote {path} — open at https://ui.perfetto.dev");
    }
    if let Some(path) = rollup_out {
        std::fs::write(&path, format!("{}\n", profile.rollup().to_json()))
            .map_err(|e| format!("write {path}: {e}"))?;
        println!("wrote {path} — rollup JSON for `dtexl profile --diff`");
    }
    Ok(())
}

/// `dtexl profile --diff A B`: print the per-(SC, stage) stall delta
/// between two rollups. An operand is `coupled` / `decoupled` (both
/// sides of one live capture from `--game`/`--res`/`--schedule`) or
/// `PATH[@coupled|@decoupled]` — a rollup JSON written by `profile
/// --rollup-out` or sliced from a `sweep --with-obs` journal record's
/// `obs` field (mode defaults to coupled).
fn cmd_profile_diff(args: &mut Args) -> Result<(), String> {
    let game_alias = args.value("--game");
    let (w, h) = parse_res(args)?;
    let schedule = parse_schedule(args)?;
    let frame: u32 = args.parsed_value("--frame")?.unwrap_or(0);
    let pipeline = parse_pipeline(args)?;
    let csv = args.flag("--csv");
    let operands = args.positionals();
    args.finish()?;
    let [a, b] = operands.as_slice() else {
        return Err(
            "profile --diff needs exactly two operands: coupled | decoupled | PATH[@MODE]".into(),
        );
    };

    // Capture one live profile only when a mode operand asks for it —
    // two file operands need no --game at all.
    let needs_capture = [a, b]
        .iter()
        .any(|o| matches!(o.as_str(), "coupled" | "decoupled"));
    let captured: Option<ObsRollup> = if needs_capture {
        let alias = game_alias
            .ok_or_else(|| "operand 'coupled'/'decoupled' requires --game <alias>".to_string())?;
        let game = Game::ALL
            .into_iter()
            .find(|g| g.alias().eq_ignore_ascii_case(&alias))
            .ok_or_else(|| format!("unknown game '{alias}' (try `dtexl list`)"))?;
        let config = SimConfig {
            game,
            width: w,
            height: h,
            frame,
            schedule,
            pipeline,
            barrier: BarrierMode::Decoupled,
        };
        Some(
            FrameProfile::capture(&config)
                .map_err(|e| e.to_string())?
                .rollup(),
        )
    } else {
        None
    };

    let side = |operand: &str| -> Result<(String, StallRollup), String> {
        match operand {
            "coupled" | "decoupled" => {
                let r = captured
                    .as_ref()
                    .expect("captured whenever a mode operand exists");
                let rollup = if operand == "coupled" {
                    r.coupled
                } else {
                    r.decoupled
                };
                Ok((operand.to_string(), rollup))
            }
            spec => {
                let (path, mode) = match spec.rsplit_once('@') {
                    Some((p, m)) if m == "coupled" || m == "decoupled" => (p, m),
                    _ => (spec, "coupled"),
                };
                let text =
                    std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
                let rollup = ObsRollup::parse(text.trim()).ok_or_else(|| {
                    format!(
                        "{path}: not a rollup JSON (export one with `dtexl profile --rollup-out` \
                         or slice a `sweep --with-obs` record's \"obs\" field)"
                    )
                })?;
                let side = if mode == "coupled" {
                    rollup.coupled
                } else {
                    rollup.decoupled
                };
                Ok((format!("{path}@{mode}"), side))
            }
        }
    };
    let (label_a, ra) = side(a)?;
    let (label_b, rb) = side(b)?;

    println!("A = {label_a}, B = {label_b}; deltas are B − A (signed cycles, percent change)");
    let table = stall_diff_table(&ra, &rb, format!("stall delta {label_b} vs {label_a}"));
    if csv {
        println!("{}", table.to_csv());
    } else {
        println!("{}", table.render());
    }
    let (ta, tb) = (ra.totals(), rb.totals());
    println!(
        "total wait delta: {:+} barrier cycles, {:+} upstream cycles",
        tb[2] as i64 - ta[2] as i64,
        tb[1] as i64 - ta[1] as i64
    );
    Ok(())
}

/// Union shard journals into one: `dtexl sweep merge <journals...>
/// --out merged.jsonl`. Last-wins per key, except that an `ok` record
/// beats a `failed` one for the same config hash regardless of input
/// order; two `ok` records with the same key and config hash but
/// different metrics are a typed error.
fn cmd_sweep_merge(args: &mut Args) -> Result<(), String> {
    let out = args
        .value("--out")
        .ok_or_else(|| "missing --out <file>".to_string())?;
    let inputs: Vec<std::path::PathBuf> = args
        .positionals()
        .into_iter()
        .map(std::path::PathBuf::from)
        .collect();
    args.finish()?;
    if inputs.is_empty() {
        return Err("merge needs at least one input journal".into());
    }
    let stats = merge_journals(&inputs, std::path::Path::new(&out)).map_err(|e| e.to_string())?;
    println!(
        "merged {} journal(s): {} record(s), {} superseded, {} corrupt line(s) dropped -> {out}",
        stats.journals, stats.records, stats.superseded, stats.corrupt
    );
    if stats.failed_ignored > 0 {
        eprintln!(
            "warning: {} failed record(s) ignored in favor of ok records for the same config hash",
            stats.failed_ignored
        );
    }
    Ok(())
}

/// Print a journal's latest `ok` records in the canonical, sorted
/// `key|config_hash|coupled|decoupled|l2` form. Volatile fields (wall
/// time, peak allocation, shard) are omitted, so two journals that
/// simulated the same jobs canonicalize identically — CI diffs a
/// merged shard run against an unsharded one this way.
fn cmd_sweep_canon(args: &mut Args) -> Result<(), String> {
    let inputs = args.positionals();
    args.finish()?;
    let [path] = inputs.as_slice() else {
        return Err("canon needs exactly one journal".into());
    };
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    // Same renderer the daemon's live merger uses for merged.canon, so
    // `sweep canon <journal>` and a daemon's on-disk canon view are
    // diffable against each other byte-for-byte.
    print!("{}", canon_text(&text));
    Ok(())
}

fn cmd_render(args: &mut Args) -> Result<(), String> {
    let game = parse_game(args)?;
    let (w, h) = parse_res(args)?;
    let schedule = parse_schedule(args)?;
    let out = args.value("--out").unwrap_or_else(|| "frame.ppm".into());
    args.finish()?;

    let scene = game.scene(&SceneSpec::try_new(w, h, 0)?);
    let img = Renderer::render(&scene, &schedule, &PipelineConfig::default(), w, h);
    let file = std::fs::File::create(&out).map_err(|e| format!("create {out}: {e}"))?;
    img.write_ppm(std::io::BufWriter::new(file))
        .map_err(|e| format!("write {out}: {e}"))?;
    println!("wrote {out} ({w}x{h}, digest {:016x})", img.digest());
    Ok(())
}

fn cmd_characterize(args: &mut Args) -> Result<(), String> {
    let (w, h) = parse_res(args)?;
    args.finish()?;
    println!(
        "{:5} {:>9} {:>7} {:>9} {:>9} {:>8} {:>8} {:>9}",
        "game", "foot MiB", "draws", "quads", "overdraw", "reuse", "fps", "tex req"
    );
    for p in characterize_all(w, h, 0) {
        println!(
            "{:5} {:>9.2} {:>7} {:>9} {:>8.2}x {:>7.2}x {:>8.1} {:>9}",
            p.game.alias(),
            p.footprint_mib,
            p.draws,
            p.quads_shaded,
            p.overdraw_factor,
            p.reuse_factor,
            p.baseline_fps,
            p.texture_requests,
        );
    }
    Ok(())
}

fn cmd_trace_save(args: &mut Args) -> Result<(), String> {
    let game = parse_game(args)?;
    let (w, h) = parse_res(args)?;
    let out = args
        .value("--out")
        .ok_or_else(|| "missing --out <file>".to_string())?;
    args.finish()?;
    let scene = game.scene(&SceneSpec::try_new(w, h, 0)?);
    dtexl_trace::save_trace(&scene, std::path::Path::new(&out)).map_err(|e| e.to_string())?;
    println!(
        "wrote {out}: {} draws, {} textures, {} vertices",
        scene.draws.len(),
        scene.textures.len(),
        scene.vertices.len()
    );
    Ok(())
}

fn cmd_trace_sim(args: &mut Args) -> Result<(), String> {
    let input = args
        .value("--in")
        .ok_or_else(|| "missing --in <file>".to_string())?;
    let (w, h) = parse_res(args)?;
    let schedule = parse_schedule(args)?;
    let coupled = args.flag("--coupled");
    let pipeline = parse_pipeline(args)?;
    args.finish()?;
    let scene: Scene =
        dtexl_trace::load_trace(std::path::Path::new(&input)).map_err(|e| e.to_string())?;
    let r = FrameSim::try_run_with_resolution(&scene, &schedule, &pipeline, w, h)
        .map_err(|e| e.to_string())?;
    let mode = if coupled {
        BarrierMode::Coupled
    } else {
        BarrierMode::Decoupled
    };
    println!("{} under {} [{:?}]", input, schedule.label(), mode);
    println!("  cycles       {}", r.total_cycles(mode));
    println!(
        "  fps          {:.2}",
        CLOCK_HZ / r.total_cycles(mode) as f64
    );
    println!("  L2 accesses  {}", r.total_l2_accesses());
    println!("  quads shaded {}", r.total_quads_shaded());
    Ok(())
}
