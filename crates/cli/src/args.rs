//! Minimal dependency-free argument parsing.

/// A consumed-on-read argument list: the subcommand is taken first,
/// then options by name; [`Args::finish`] rejects leftovers so typos
/// fail loudly.
#[derive(Debug)]
pub struct Args {
    rest: Vec<String>,
}

impl Args {
    /// Capture the argument iterator (without the program name).
    pub fn parse(args: impl Iterator<Item = String>) -> Self {
        Self {
            rest: args.collect(),
        }
    }

    /// Take the leading subcommand, if any.
    pub fn subcommand(&mut self) -> Option<String> {
        if self.rest.first().is_some_and(|a| !a.starts_with('-')) {
            Some(self.rest.remove(0))
        } else {
            None
        }
    }

    /// Take the value of `--name value`, if present.
    pub fn value(&mut self, name: &str) -> Option<String> {
        let i = self.rest.iter().position(|a| a == name)?;
        if i + 1 >= self.rest.len() {
            // Flag present without a value: remove it and report absent;
            // finish() will not see it again, and callers treat missing
            // values as missing options.
            self.rest.remove(i);
            return None;
        }
        self.rest.remove(i);
        Some(self.rest.remove(i))
    }

    /// Take `--name value` and parse it as `T`, distinguishing an
    /// absent option (`Ok(None)`) from a malformed value (`Err`).
    ///
    /// # Errors
    ///
    /// Returns a message naming the flag and value when parsing fails.
    pub fn parsed_value<T: std::str::FromStr>(&mut self, name: &str) -> Result<Option<T>, String> {
        match self.value(name) {
            None => Ok(None),
            Some(v) => v.parse().map(Some).map_err(|_| format!("bad {name} '{v}'")),
        }
    }

    /// Take a boolean `--flag`.
    pub fn flag(&mut self, name: &str) -> bool {
        if let Some(i) = self.rest.iter().position(|a| a == name) {
            self.rest.remove(i);
            true
        } else {
            false
        }
    }

    /// Take every remaining argument that does not start with `-`, in
    /// order. Call this *after* consuming named options, so an option's
    /// value is not mistaken for a positional.
    pub fn positionals(&mut self) -> Vec<String> {
        let mut out = Vec::new();
        let mut i = 0;
        while i < self.rest.len() {
            if self.rest[i].starts_with('-') {
                i += 1;
            } else {
                out.push(self.rest.remove(i));
            }
        }
        out
    }

    /// Fail if any argument was not consumed.
    pub fn finish(&mut self) -> Result<(), String> {
        if self.rest.is_empty() {
            Ok(())
        } else {
            Err(format!("unrecognized arguments: {:?}", self.rest))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Args {
        Args::parse(s.split_whitespace().map(String::from))
    }

    #[test]
    fn subcommand_then_options() {
        let mut a = args("sim --game GTr --coupled --res 64x32");
        assert_eq!(a.subcommand().as_deref(), Some("sim"));
        assert_eq!(a.value("--game").as_deref(), Some("GTr"));
        assert!(a.flag("--coupled"));
        assert_eq!(a.value("--res").as_deref(), Some("64x32"));
        assert!(a.finish().is_ok());
    }

    #[test]
    fn missing_subcommand() {
        let mut a = args("--game GTr");
        assert!(a.subcommand().is_none());
    }

    #[test]
    fn leftovers_are_rejected() {
        let mut a = args("sim --game GTr --typo 3");
        a.subcommand();
        a.value("--game");
        assert!(a.finish().unwrap_err().contains("--typo"));
    }

    #[test]
    fn absent_options() {
        let mut a = args("sim");
        a.subcommand();
        assert!(a.value("--game").is_none());
        assert!(!a.flag("--coupled"));
        assert!(a.finish().is_ok());
    }

    #[test]
    fn parsed_values() {
        let mut a = args("sim --frames 5 --threads nope");
        a.subcommand();
        assert_eq!(a.parsed_value::<u32>("--frames"), Ok(Some(5)));
        assert_eq!(a.parsed_value::<u32>("--missing"), Ok(None));
        let err = a.parsed_value::<usize>("--threads").unwrap_err();
        assert!(err.contains("--threads") && err.contains("nope"), "{err}");
        assert!(a.finish().is_ok());
    }

    #[test]
    fn positionals_after_named_options() {
        let mut a = args("merge s0.jsonl s1.jsonl --out merged.jsonl");
        assert_eq!(a.subcommand().as_deref(), Some("merge"));
        assert_eq!(a.value("--out").as_deref(), Some("merged.jsonl"));
        assert_eq!(a.positionals(), ["s0.jsonl", "s1.jsonl"]);
        assert!(a.finish().is_ok());
        // Unconsumed flags are still leftovers.
        let mut a = args("merge s0.jsonl --typo");
        a.subcommand();
        assert_eq!(a.positionals(), ["s0.jsonl"]);
        assert!(a.finish().unwrap_err().contains("--typo"));
    }

    #[test]
    fn dangling_value_flag() {
        let mut a = args("sim --res");
        a.subcommand();
        assert!(a.value("--res").is_none());
        assert!(a.finish().is_ok(), "dangling flag consumed");
    }
}
