//! Process-global shutdown flag, set by SIGTERM/SIGINT.
//!
//! The daemon and spool-worker loops in `dtexl::daemon` take a plain
//! `fn() -> bool` shutdown hook so the core crate can stay
//! `forbid(unsafe_code)`; this module owns the one unavoidable unsafe
//! call — registering a C signal handler — and exposes the flag
//! behind that hook. The handler only performs an atomic store, the
//! canonical async-signal-safe operation.
//!
//! On non-unix targets [`install`] is a no-op and the flag can only
//! stay `false`; the daemon still drains via its spool drain marker.

use std::sync::atomic::{AtomicBool, Ordering};

static SHUTDOWN: AtomicBool = AtomicBool::new(false);

/// Whether a SIGTERM/SIGINT has been received since [`install`].
/// Matches the `fn() -> bool` shutdown hooks of
/// `dtexl::daemon::DaemonOptions` / `WorkerOptions`.
pub fn shutdown_requested() -> bool {
    SHUTDOWN.load(Ordering::SeqCst)
}

/// Register the SIGTERM/SIGINT handler (idempotent; later
/// registrations are harmless re-installs of the same handler).
#[cfg(unix)]
pub fn install() {
    extern "C" {
        // signal(2) from the C standard library, declared directly so
        // this crate needs no libc binding. The return value (the
        // previous handler, or SIG_ERR) is deliberately ignored: on
        // failure the old disposition simply stays in place and the
        // spool drain marker remains the shutdown path.
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" fn on_signal(_signum: i32) {
        SHUTDOWN.store(true, Ordering::SeqCst);
    }

    // SAFETY: `signal` is the C standard library's signal(2), declared
    // with a compatible ABI (a C function pointer is pointer-sized).
    // The handler is async-signal-safe: it performs a single atomic
    // store on a `'static` AtomicBool, touches no allocator, lock or
    // errno, and never unwinds.
    unsafe {
        signal(SIGTERM, on_signal);
        signal(SIGINT, on_signal);
    }
}

/// Non-unix stand-in: no signals to hook; the spool drain marker is
/// the only shutdown path.
#[cfg(not(unix))]
pub fn install() {}
