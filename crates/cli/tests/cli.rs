//! End-to-end tests of the `dtexl` binary (cargo builds it for us and
//! exposes its path via `CARGO_BIN_EXE_dtexl`).

use std::process::Command;

fn dtexl(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_dtexl"))
        .args(args)
        .output()
        .expect("spawn dtexl")
}

#[test]
fn no_args_prints_usage_and_fails() {
    let out = dtexl(&[]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage"));
}

#[test]
fn list_names_all_games_and_schedules() {
    let out = dtexl(&["list"]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    for alias in [
        "CCS", "SoD", "TRu", "SWa", "CRa", "RoK", "DDS", "Snp", "Mze", "GTr",
    ] {
        assert!(stdout.contains(alias), "missing {alias}");
    }
    assert!(stdout.contains("hlb-flp2"));
}

#[test]
fn sim_reports_metrics() {
    let out = dtexl(&["sim", "--game", "GTr", "--res", "256x128"]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("cycles"));
    assert!(stdout.contains("L2 accesses"));
    assert!(stdout.contains("CG-square/Hilbert/flp2"));
}

#[test]
fn sim_rejects_unknown_game_and_flags() {
    let out = dtexl(&["sim", "--game", "XXX", "--res", "128x64"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown game"));

    let out = dtexl(&["sim", "--game", "GTr", "--res", "128x64", "--bogus"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--bogus"));
}

#[test]
fn trace_save_and_sim_roundtrip() {
    let dir = std::env::temp_dir().join("dtexl_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let trace = dir.join("ccs.dtxl");
    let trace_s = trace.to_str().unwrap();

    let out = dtexl(&[
        "trace-save",
        "--game",
        "CCS",
        "--out",
        trace_s,
        "--res",
        "256x128",
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(trace.exists());

    let out = dtexl(&[
        "trace-sim",
        "--in",
        trace_s,
        "--schedule",
        "baseline",
        "--coupled",
        "--res",
        "256x128",
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("FG-xshift2/Z-order/const"));
    std::fs::remove_file(&trace).ok();
}

#[test]
fn render_writes_a_ppm() {
    let dir = std::env::temp_dir().join("dtexl_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let ppm = dir.join("out.ppm");
    let out = dtexl(&[
        "render",
        "--game",
        "Mze",
        "--out",
        ppm.to_str().unwrap(),
        "--res",
        "128x64",
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let bytes = std::fs::read(&ppm).unwrap();
    assert!(bytes.starts_with(b"P6\n128 64\n255\n"));
    std::fs::remove_file(&ppm).ok();
}

#[test]
fn errors_are_single_line_json_when_requested() {
    let out = dtexl(&["sim", "--game", "XXX", "--format", "json"]);
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    let line = stderr.lines().next().unwrap();
    assert!(line.starts_with("{\"error\":\""), "stderr: {stderr}");
    assert!(line.ends_with("\"}"), "stderr: {stderr}");
    assert!(line.contains("unknown game"));
}

#[test]
fn sweep_journals_results_and_resume_skips_them() {
    let dir = std::env::temp_dir().join(format!("dtexl_cli_sweep_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let journal = dir.join("sweep.jsonl");
    let _ = std::fs::remove_file(&journal);
    let journal_s = journal.to_str().unwrap();

    let base = [
        "sweep",
        "--games",
        "CCS",
        "--res",
        "128x64",
        "--journal",
        journal_s,
    ];
    let out = dtexl(&base);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("2/2 jobs completed"), "stdout: {stdout}");
    let text = std::fs::read_to_string(&journal).unwrap();
    assert_eq!(text.lines().count(), 2, "journal: {text}");
    assert!(text.contains("\"status\":\"ok\""));
    assert!(text.contains("\"coupled_cycles\":"));

    // Resume: both jobs are already journaled, nothing re-runs.
    let out = dtexl(&[&base[..], &["--resume"]].concat());
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(stdout.matches("Skipped").count(), 2, "stdout: {stdout}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn sweep_with_failures_exits_2_and_reports_them() {
    // A zero-second watchdog times every job out; with --keep-going the
    // sweep still finishes and signals "completed with failures".
    let out = dtexl(&[
        "sweep",
        "--games",
        "CCS",
        "--schedules",
        "baseline",
        "--res",
        "128x64",
        "--keep-going",
        "--job-timeout",
        "0",
    ]);
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("1 failed"), "stderr: {stderr}");
    assert!(stderr.contains("timeout"), "stderr: {stderr}");
}

#[test]
fn sweep_emits_json_records_on_request() {
    let out = dtexl(&[
        "sweep",
        "--games",
        "GTr",
        "--schedules",
        "dtexl",
        "--res",
        "128x64",
        "--format",
        "json",
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    let line = stdout.lines().next().unwrap();
    assert!(line.starts_with("{\"key\":\"GTr|"), "stdout: {stdout}");
    assert!(line.contains("\"status\":\"ok\""));
    assert!(line.contains("\"decoupled_cycles\":"));
}

#[test]
fn sweep_resume_requires_a_journal() {
    let out = dtexl(&["sweep", "--games", "CCS", "--res", "128x64", "--resume"]);
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("--journal"));
}

#[test]
fn named_schedules_are_accepted() {
    let out = dtexl(&[
        "sim",
        "--game",
        "TRu",
        "--schedule",
        "Sorder-flp",
        "--res",
        "128x64",
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("CG-yrect/S-order/flp1"));
}
