//! End-to-end tests of the `dtexl` binary (cargo builds it for us and
//! exposes its path via `CARGO_BIN_EXE_dtexl`).

use std::process::Command;

fn dtexl(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_dtexl"))
        .args(args)
        .output()
        .expect("spawn dtexl")
}

#[test]
fn no_args_prints_usage_and_fails() {
    let out = dtexl(&[]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage"));
}

#[test]
fn list_names_all_games_and_schedules() {
    let out = dtexl(&["list"]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    for alias in [
        "CCS", "SoD", "TRu", "SWa", "CRa", "RoK", "DDS", "Snp", "Mze", "GTr",
    ] {
        assert!(stdout.contains(alias), "missing {alias}");
    }
    assert!(stdout.contains("hlb-flp2"));
}

#[test]
fn sim_reports_metrics() {
    let out = dtexl(&["sim", "--game", "GTr", "--res", "256x128"]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("cycles"));
    assert!(stdout.contains("L2 accesses"));
    assert!(stdout.contains("CG-square/Hilbert/flp2"));
}

#[test]
fn sim_rejects_unknown_game_and_flags() {
    let out = dtexl(&["sim", "--game", "XXX", "--res", "128x64"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown game"));

    let out = dtexl(&["sim", "--game", "GTr", "--res", "128x64", "--bogus"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--bogus"));
}

#[test]
fn trace_save_and_sim_roundtrip() {
    let dir = std::env::temp_dir().join("dtexl_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let trace = dir.join("ccs.dtxl");
    let trace_s = trace.to_str().unwrap();

    let out = dtexl(&[
        "trace-save",
        "--game",
        "CCS",
        "--out",
        trace_s,
        "--res",
        "256x128",
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(trace.exists());

    let out = dtexl(&[
        "trace-sim",
        "--in",
        trace_s,
        "--schedule",
        "baseline",
        "--coupled",
        "--res",
        "256x128",
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("FG-xshift2/Z-order/const"));
    std::fs::remove_file(&trace).ok();
}

#[test]
fn render_writes_a_ppm() {
    let dir = std::env::temp_dir().join("dtexl_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let ppm = dir.join("out.ppm");
    let out = dtexl(&[
        "render",
        "--game",
        "Mze",
        "--out",
        ppm.to_str().unwrap(),
        "--res",
        "128x64",
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let bytes = std::fs::read(&ppm).unwrap();
    assert!(bytes.starts_with(b"P6\n128 64\n255\n"));
    std::fs::remove_file(&ppm).ok();
}

#[test]
fn named_schedules_are_accepted() {
    let out = dtexl(&[
        "sim",
        "--game",
        "TRu",
        "--schedule",
        "Sorder-flp",
        "--res",
        "128x64",
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("CG-yrect/S-order/flp1"));
}
