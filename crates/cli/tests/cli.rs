//! End-to-end tests of the `dtexl` binary (cargo builds it for us and
//! exposes its path via `CARGO_BIN_EXE_dtexl`).

use std::process::Command;

fn dtexl(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_dtexl"))
        .args(args)
        .output()
        .expect("spawn dtexl")
}

#[test]
fn no_args_prints_usage_and_fails() {
    let out = dtexl(&[]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage"));
}

#[test]
fn list_names_all_games_and_schedules() {
    let out = dtexl(&["list"]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    for alias in [
        "CCS", "SoD", "TRu", "SWa", "CRa", "RoK", "DDS", "Snp", "Mze", "GTr",
    ] {
        assert!(stdout.contains(alias), "missing {alias}");
    }
    assert!(stdout.contains("hlb-flp2"));
}

#[test]
fn sim_reports_metrics() {
    let out = dtexl(&["sim", "--game", "GTr", "--res", "256x128"]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("cycles"));
    assert!(stdout.contains("L2 accesses"));
    assert!(stdout.contains("CG-square/Hilbert/flp2"));
}

#[test]
fn sim_rejects_unknown_game_and_flags() {
    let out = dtexl(&["sim", "--game", "XXX", "--res", "128x64"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown game"));

    let out = dtexl(&["sim", "--game", "GTr", "--res", "128x64", "--bogus"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--bogus"));
}

#[test]
fn trace_save_and_sim_roundtrip() {
    let dir = std::env::temp_dir().join("dtexl_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let trace = dir.join("ccs.dtxl");
    let trace_s = trace.to_str().unwrap();

    let out = dtexl(&[
        "trace-save",
        "--game",
        "CCS",
        "--out",
        trace_s,
        "--res",
        "256x128",
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(trace.exists());

    let out = dtexl(&[
        "trace-sim",
        "--in",
        trace_s,
        "--schedule",
        "baseline",
        "--coupled",
        "--res",
        "256x128",
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("FG-xshift2/Z-order/const"));
    std::fs::remove_file(&trace).ok();
}

#[test]
fn render_writes_a_ppm() {
    let dir = std::env::temp_dir().join("dtexl_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let ppm = dir.join("out.ppm");
    let out = dtexl(&[
        "render",
        "--game",
        "Mze",
        "--out",
        ppm.to_str().unwrap(),
        "--res",
        "128x64",
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let bytes = std::fs::read(&ppm).unwrap();
    assert!(bytes.starts_with(b"P6\n128 64\n255\n"));
    std::fs::remove_file(&ppm).ok();
}

#[test]
fn errors_are_single_line_json_when_requested() {
    let out = dtexl(&["sim", "--game", "XXX", "--format", "json"]);
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    let line = stderr.lines().next().unwrap();
    assert!(line.starts_with("{\"error\":\""), "stderr: {stderr}");
    assert!(line.ends_with("\"}"), "stderr: {stderr}");
    assert!(line.contains("unknown game"));
}

#[test]
fn sweep_journals_results_and_resume_skips_them() {
    let dir = std::env::temp_dir().join(format!("dtexl_cli_sweep_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let journal = dir.join("sweep.jsonl");
    let _ = std::fs::remove_file(&journal);
    let journal_s = journal.to_str().unwrap();

    let base = [
        "sweep",
        "--games",
        "CCS",
        "--res",
        "128x64",
        "--journal",
        journal_s,
    ];
    let out = dtexl(&base);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("2/2 jobs completed"), "stdout: {stdout}");
    let text = std::fs::read_to_string(&journal).unwrap();
    assert_eq!(text.lines().count(), 2, "journal: {text}");
    assert!(text.contains("\"status\":\"ok\""));
    assert!(text.contains("\"coupled_cycles\":"));

    // Resume: both jobs are already journaled, nothing re-runs.
    let out = dtexl(&[&base[..], &["--resume"]].concat());
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(stdout.matches("Skipped").count(), 2, "stdout: {stdout}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn sweep_with_failures_exits_2_and_reports_them() {
    // A zero-second watchdog times every job out; with --keep-going the
    // sweep still finishes and signals "completed with failures".
    let out = dtexl(&[
        "sweep",
        "--games",
        "CCS",
        "--schedules",
        "baseline",
        "--res",
        "128x64",
        "--keep-going",
        "--job-timeout",
        "0",
    ]);
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("1 failed"), "stderr: {stderr}");
    assert!(stderr.contains("timeout"), "stderr: {stderr}");
}

#[test]
fn sweep_emits_json_records_on_request() {
    let out = dtexl(&[
        "sweep",
        "--games",
        "GTr",
        "--schedules",
        "dtexl",
        "--res",
        "128x64",
        "--format",
        "json",
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    let line = stdout.lines().next().unwrap();
    assert!(line.starts_with("{\"key\":\"GTr|"), "stdout: {stdout}");
    assert!(line.contains("\"status\":\"ok\""));
    assert!(line.contains("\"decoupled_cycles\":"));
}

#[test]
fn sweep_resume_requires_a_journal() {
    let out = dtexl(&["sweep", "--games", "CCS", "--res", "128x64", "--resume"]);
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("--journal"));
}

#[test]
fn sharded_sweeps_merge_back_to_the_unsharded_journal() {
    let dir = std::env::temp_dir().join(format!("dtexl_cli_shard_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = |name: &str| dir.join(name).to_str().unwrap().to_string();

    let sweep = |extra: &[&str]| {
        let mut args = vec!["sweep", "--games", "CCS,GTr,Mze", "--res", "128x64"];
        args.extend_from_slice(extra);
        let out = dtexl(&args);
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
    };
    sweep(&["--journal", &path("all.jsonl")]);
    sweep(&["--journal", &path("s0.jsonl"), "--shard", "0/2", "--table"]);
    sweep(&["--journal", &path("s1.jsonl"), "--shard", "1/2"]);

    let out = dtexl(&[
        "sweep",
        "merge",
        &path("s0.jsonl"),
        &path("s1.jsonl"),
        "--out",
        &path("merged.jsonl"),
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("merged 2 journal(s): 6 record(s)"),
        "stdout: {stdout}"
    );

    // `sweep canon` strips the volatile fields (timings, peaks, shard
    // stamps): the merged journal must canonicalise identically to the
    // unsharded one.
    let canon = |journal: &str| {
        let out = dtexl(&["sweep", "canon", journal]);
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        String::from_utf8_lossy(&out.stdout).into_owned()
    };
    let merged = canon(&path("merged.jsonl"));
    assert_eq!(merged, canon(&path("all.jsonl")));
    assert_eq!(merged.lines().count(), 6);
    assert!(merged.lines().all(|l| l.split('|').count() >= 5));

    // The merged journal drives --resume exactly like a native one.
    let out = dtexl(&[
        "sweep",
        "--games",
        "CCS,GTr,Mze",
        "--res",
        "128x64",
        "--journal",
        &path("merged.jsonl"),
        "--resume",
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(stdout.matches("Skipped").count(), 6, "stdout: {stdout}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn sweep_rejects_bad_shard_specs_and_merge_without_out() {
    for bad in ["2/2", "0/0", "nonsense", "1"] {
        let out = dtexl(&["sweep", "--games", "CCS", "--res", "128x64", "--shard", bad]);
        assert_eq!(out.status.code(), Some(1), "--shard {bad} must be rejected");
        assert!(String::from_utf8_lossy(&out.stderr).contains("--shard"));
    }
    let out = dtexl(&["sweep", "merge", "some.jsonl"]);
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("--out"));
}

#[test]
fn job_mem_budget_fails_hungry_jobs_with_a_typed_error() {
    // 1 MB budget: even a small frame's working set exceeds it, so the
    // job fails with the mem_budget error kind and exit code 2
    // (completed with failures), not a crash.
    let out = dtexl(&[
        "sweep",
        "--games",
        "CCS",
        "--schedules",
        "baseline",
        "--res",
        "128x64",
        "--keep-going",
        "--job-mem-budget",
        "1",
    ]);
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("memory budget"), "stderr: {stderr}");
}

#[test]
fn sweep_table_reports_peaks_per_job() {
    let out = dtexl(&[
        "sweep",
        "--games",
        "GTr",
        "--schedules",
        "dtexl",
        "--res",
        "128x64",
        "--table",
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("peak_alloc"), "stdout: {stdout}");
    assert!(stdout.contains("MiB"), "stdout: {stdout}");
}

#[test]
fn named_schedules_are_accepted() {
    let out = dtexl(&[
        "sim",
        "--game",
        "TRu",
        "--schedule",
        "Sorder-flp",
        "--res",
        "128x64",
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("CG-yrect/S-order/flp1"));
}
